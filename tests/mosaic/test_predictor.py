"""Sequential / batched Mosaic Flow predictor."""

import numpy as np
import pytest

from repro.fd import solve_laplace_from_loop
from repro.mosaic import (
    FDSubdomainSolver,
    MosaicFlowPredictor,
    MosaicGeometry,
    assemble_solution,
    initialize_lattice_field,
)
from repro.pde import HARMONIC_FUNCTIONS


def make_problem(geometry, fn_name="saddle"):
    grid = geometry.global_grid()
    fn = HARMONIC_FUNCTIONS[fn_name]
    loop = grid.boundary_from_function(fn)
    reference = solve_laplace_from_loop(grid, loop, method="direct")
    return grid, loop, reference


class TestInitialization:
    def test_modes(self, small_geometry):
        grid, loop, _ = make_problem(small_geometry)
        for mode in ("zero", "mean", "linear"):
            field = initialize_lattice_field(small_geometry, loop, mode)
            assert field.shape == grid.shape
            assert np.allclose(grid.extract_boundary(field), grid.extract_boundary(grid.insert_boundary(loop)))
        with pytest.raises(ValueError):
            initialize_lattice_field(small_geometry, loop, "random")

    def test_linear_mode_interpolates_linear_data_exactly(self):
        geo = MosaicGeometry(subdomain_points=9, subdomain_extent=0.5, steps_x=4, steps_y=4)
        grid = geo.global_grid()
        exact = grid.field_from_function(HARMONIC_FUNCTIONS["linear"])
        loop = grid.extract_boundary(exact)
        field = initialize_lattice_field(geo, loop, "linear")
        assert np.max(np.abs(field - exact)) < 1e-10


class TestConvergenceToReference:
    def test_converges_with_exact_subdomain_solver(self, small_geometry, fd_subdomain_solver):
        grid, loop, reference = make_problem(small_geometry, "exp_sine")
        predictor = MosaicFlowPredictor(small_geometry, fd_subdomain_solver, batched=True)
        result = predictor.run(loop, max_iterations=300, tol=1e-9, reference=reference)
        assert result.converged
        assert np.mean(np.abs(result.solution - reference)) < 1e-5
        assert result.iterations < 300
        # deltas should broadly decrease
        assert result.deltas[-1] < result.deltas[0]

    def test_boundary_values_are_exact(self, small_geometry, fd_subdomain_solver):
        grid, loop, reference = make_problem(small_geometry)
        predictor = MosaicFlowPredictor(small_geometry, fd_subdomain_solver)
        result = predictor.run(loop, max_iterations=40, tol=1e-8)
        canonical = grid.insert_boundary(loop)
        mask = grid.boundary_mask()
        assert np.allclose(result.solution[mask], canonical[mask])

    def test_target_mae_stopping(self, small_geometry, fd_subdomain_solver):
        grid, loop, reference = make_problem(small_geometry, "cubic")
        predictor = MosaicFlowPredictor(small_geometry, fd_subdomain_solver)
        result = predictor.run(
            loop, max_iterations=200, tol=0.0, reference=reference, target_mae=0.05
        )
        assert result.converged
        assert result.mae_history[-1][1] < 0.05

    def test_larger_domain_still_converges(self, fd_subdomain_solver):
        geo = MosaicGeometry(subdomain_points=9, subdomain_extent=0.5, steps_x=6, steps_y=6)
        grid, loop, reference = make_problem(geo, "product")
        solver = FDSubdomainSolver(geo.subdomain_grid())
        predictor = MosaicFlowPredictor(geo, solver)
        result = predictor.run(loop, max_iterations=400, tol=1e-8, reference=reference)
        assert np.mean(np.abs(result.solution - reference)) < 1e-4


class TestBatchedEqualsUnbatched:
    def test_identical_lattice_fields(self, small_geometry):
        grid, loop, _ = make_problem(small_geometry, "exp_sine")
        solver = FDSubdomainSolver(small_geometry.subdomain_grid())
        batched = MosaicFlowPredictor(small_geometry, solver, batched=True)
        unbatched = MosaicFlowPredictor(small_geometry, solver, batched=False)
        res_b = batched.run(loop, max_iterations=12, tol=0.0, assemble=False)
        res_u = unbatched.run(loop, max_iterations=12, tol=0.0, assemble=False)
        assert np.array_equal(res_b.lattice_field, res_u.lattice_field)

    def test_timings_recorded(self, small_geometry, fd_subdomain_solver):
        grid, loop, _ = make_problem(small_geometry)
        predictor = MosaicFlowPredictor(small_geometry, fd_subdomain_solver)
        result = predictor.run(loop, max_iterations=8, tol=0.0)
        assert {"inference", "boundaries_io", "assembly"} <= set(result.timings)
        assert result.time_per_iteration > 0


class TestAssembly:
    def test_assembled_solution_covers_every_point(self, small_geometry, fd_subdomain_solver):
        grid, loop, _ = make_problem(small_geometry)
        field = initialize_lattice_field(small_geometry, loop, "linear")
        solution = assemble_solution(field, small_geometry, fd_subdomain_solver, boundary_loop=loop)
        assert solution.shape == grid.shape
        assert np.all(np.isfinite(solution))

    def test_validation_of_boundary_and_solver_sizes(self, small_geometry, fd_subdomain_solver):
        predictor = MosaicFlowPredictor(small_geometry, fd_subdomain_solver)
        with pytest.raises(ValueError):
            predictor.run(np.zeros(7))
        big_geo = MosaicGeometry(subdomain_points=13, subdomain_extent=0.5, steps_x=4, steps_y=4)
        with pytest.raises(ValueError):
            MosaicFlowPredictor(big_geo, fd_subdomain_solver)


class TestNeuralPredictor:
    def test_runs_with_sdnet_solver(self, small_geometry, small_sdnet):
        """An untrained SDNet will not be accurate, but the pipeline must run."""

        from repro.mosaic import SDNetSubdomainSolver

        grid, loop, _ = make_problem(small_geometry)
        # The SDNet fixture was built for the 9x9 subdomain boundary (32 samples).
        assert small_sdnet.boundary_size == small_geometry.subdomain_grid().boundary_size
        predictor = MosaicFlowPredictor(small_geometry, SDNetSubdomainSolver(small_sdnet))
        result = predictor.run(loop, max_iterations=8, tol=0.0)
        assert result.solution.shape == grid.shape
        assert np.all(np.isfinite(result.solution))
