"""Distributed Mosaic Flow predictor (Algorithm 2) on the simulated cluster."""

import numpy as np
import pytest

from repro.distributed import ProcessGrid
from repro.fd import solve_laplace_from_loop
from repro.mosaic import (
    DistributedMosaicFlowPredictor,
    FDSubdomainSolver,
    MosaicFlowPredictor,
    MosaicGeometry,
)
from repro.mosaic.distributed import HaloExchangePlan, RankLayout, _owner_anchor
from repro.pde import HARMONIC_FUNCTIONS


@pytest.fixture(scope="module")
def problem():
    geo = MosaicGeometry(subdomain_points=9, subdomain_extent=0.5, steps_x=6, steps_y=4)
    grid = geo.global_grid()
    loop = grid.boundary_from_function(HARMONIC_FUNCTIONS["exp_sine"])
    reference = solve_laplace_from_loop(grid, loop, method="direct")
    return geo, grid, loop, reference


def solver_factory_for(geometry):
    return lambda: FDSubdomainSolver(geometry.subdomain_grid(), method="direct")


class TestRankLayout:
    def test_layout_extents(self, problem):
        geo, *_ = problem
        grid = ProcessGrid(4)
        layout = RankLayout.build(geo, grid, 0)
        assert layout.row_offset == 0 and layout.col_offset == 0
        assert layout.local_shape[0] == (layout.part.rows + 1) * geo.half + 1

    def test_owned_ranges_partition_global_grid(self, problem):
        geo, grid_obj, *_ = problem
        pgrid = ProcessGrid(4)
        covered_rows = np.zeros(geo.global_ny, dtype=int)
        covered_cols = np.zeros(geo.global_nx, dtype=int)
        for rank in range(4):
            layout = RankLayout.build(geo, pgrid, rank)
            r0, r1 = layout.owned_row_range(geo)
            c0, c1 = layout.owned_col_range(geo)
            covered_rows[r0:r1] += 1
            covered_cols[c0:c1] += 1
        # Each global row/col owned by exactly the ranks in one process row/col.
        assert covered_rows.min() >= 1 and covered_cols.min() >= 1

    def test_too_many_ranks_rejected(self):
        geo = MosaicGeometry(subdomain_points=9, subdomain_extent=0.5, steps_x=4, steps_y=4)
        pgrid = ProcessGrid(9, dims=(3, 3))
        # 3x3 anchors over 3x3 ranks is fine; 16 ranks is not.
        RankLayout.build(geo, pgrid, 0)
        # A 4x4 process grid over a 3x3 anchor grid leaves the last process
        # row/column without anchors.
        bad = ProcessGrid(16, dims=(4, 4))
        with pytest.raises(ValueError):
            RankLayout.build(geo, bad, 15)


class TestOwnership:
    def test_global_boundary_has_no_owner(self, problem):
        geo, *_ = problem
        assert _owner_anchor(geo, 0, 5) is None
        assert _owner_anchor(geo, geo.global_ny - 1, 3) is None

    def test_lattice_intersections_are_centre_points(self, problem):
        geo, *_ = problem
        h = geo.half
        assert _owner_anchor(geo, h, h) == (0, 0)
        assert _owner_anchor(geo, 2 * h, 3 * h) == (1, 2)

    def test_non_lattice_points_have_no_owner(self, problem):
        geo, *_ = problem
        assert _owner_anchor(geo, geo.half + 1, geo.half + 1) is None


class TestHaloPlanConsistency:
    @pytest.mark.parametrize("world_size", [2, 4, 6])
    def test_sends_match_peer_receives(self, problem, world_size):
        geo, *_ = problem
        pgrid = ProcessGrid(world_size)
        layouts = [RankLayout.build(geo, pgrid, r) for r in range(world_size)]
        plans = [HaloExchangePlan.build(geo, pgrid, layouts, r) for r in range(world_size)]
        for rank in range(world_size):
            for peer, (rows, cols) in plans[rank].sends.items():
                recv_rows, recv_cols = plans[peer].recvs[rank]
                # convert both to global indices and compare as ordered lists
                send_global = np.stack(
                    [rows + layouts[rank].row_offset, cols + layouts[rank].col_offset], axis=1
                )
                recv_global = np.stack(
                    [recv_rows + layouts[peer].row_offset, recv_cols + layouts[peer].col_offset],
                    axis=1,
                )
                assert np.array_equal(send_global, recv_global)

    def test_halo_volume_positive_for_multirank(self, problem):
        geo, *_ = problem
        pgrid = ProcessGrid(4)
        layouts = [RankLayout.build(geo, pgrid, r) for r in range(4)]
        plan = HaloExchangePlan.build(geo, pgrid, layouts, 0)
        assert plan.num_neighbors >= 2
        assert plan.bytes_per_iteration() > 0


class TestDistributedExecution:
    def test_single_rank_matches_sequential_exactly(self, problem):
        geo, grid, loop, reference = problem
        sequential = MosaicFlowPredictor(geo, solver_factory_for(geo)(), batched=True)
        seq_result = sequential.run(loop, max_iterations=24, tol=0.0, assemble=True)
        distributed = DistributedMosaicFlowPredictor(geo, solver_factory_for(geo))
        dist_results = distributed.run(1, loop, max_iterations=24, tol=0.0)
        assert np.allclose(dist_results[0].solution, seq_result.solution)

    @pytest.mark.parametrize("world_size", [2, 4])
    def test_multirank_converges_to_reference(self, problem, world_size):
        geo, grid, loop, reference = problem
        predictor = DistributedMosaicFlowPredictor(geo, solver_factory_for(geo))
        results = predictor.run(
            world_size, loop, max_iterations=200, tol=1e-8, reference=reference
        )
        root = results[0]
        assert root.solution is not None
        assert np.mean(np.abs(root.solution - reference)) < 1e-4
        # every rank agrees on the iteration count and convergence
        assert len({r.iterations for r in results}) == 1
        assert all(r.converged for r in results)
        # non-root ranks do not assemble the global solution
        assert all(r.solution is None for r in results[1:])

    def test_relaxed_synchronization_costs_accuracy_at_fixed_iterations(self, problem):
        """More ranks -> staler halos -> (slightly) worse lattice error at a
        fixed iteration budget.  This is the effect behind Table 4."""

        geo, grid, loop, reference = problem
        errors = {}
        for world_size in (1, 4):
            predictor = DistributedMosaicFlowPredictor(geo, solver_factory_for(geo))
            results = predictor.run(
                world_size, loop, max_iterations=30, tol=0.0, reference=reference
            )
            errors[world_size] = results[0].mae_history[-1][1]
        assert errors[4] >= errors[1] * 0.99  # never significantly better

    def test_morton_ordering_also_converges(self, problem):
        geo, grid, loop, reference = problem
        predictor = DistributedMosaicFlowPredictor(
            geo, solver_factory_for(geo), ordering="morton"
        )
        results = predictor.run(4, loop, max_iterations=150, tol=1e-8, reference=reference)
        assert np.mean(np.abs(results[0].solution - reference)) < 1e-3

    def test_comm_stats_and_timings_recorded(self, problem):
        geo, grid, loop, reference = problem
        predictor = DistributedMosaicFlowPredictor(geo, solver_factory_for(geo))
        results = predictor.run(4, loop, max_iterations=12, tol=0.0)
        for r in results:
            assert r.comm_stats["sends"] > 0
            assert r.comm_stats["allgathers"] == 1
            assert {"inference", "sendrecv", "allgather", "boundaries_io"} <= set(r.timings)
