"""FD and SDNet subdomain solvers behind the common predict() interface."""

import numpy as np
import pytest

from repro.mosaic import FDSubdomainSolver, SDNetSubdomainSolver
from repro.mosaic.solvers import SubdomainSolver
from repro.pde import HARMONIC_FUNCTIONS


class TestFDSubdomainSolver:
    def test_protocol_conformance(self, fd_subdomain_solver):
        assert isinstance(fd_subdomain_solver, SubdomainSolver)

    def test_exactness_on_harmonic_boundary(self, small_geometry):
        solver = FDSubdomainSolver(small_geometry.subdomain_grid())
        grid = small_geometry.subdomain_grid()
        exact = grid.field_from_function(HARMONIC_FUNCTIONS["saddle"])
        loop = grid.extract_boundary(exact)
        points = grid.interior_points()
        prediction = solver.predict(loop[None, :], points)
        assert prediction.shape == (1, points.shape[0])
        assert np.max(np.abs(prediction[0] - exact[1:-1, 1:-1].ravel())) < 1e-12

    def test_batch_of_boundaries(self, small_geometry, rng):
        grid = small_geometry.subdomain_grid()
        solver = FDSubdomainSolver(grid)
        loops = rng.normal(size=(3, grid.boundary_size))
        points = small_geometry.center_line_local_coordinates()
        out = solver.predict(loops, points)
        assert out.shape == (3, points.shape[0])
        assert solver.inference_calls == 3

    def test_rejects_off_grid_points(self, small_geometry):
        solver = FDSubdomainSolver(small_geometry.subdomain_grid())
        grid = small_geometry.subdomain_grid()
        loops = np.zeros((1, grid.boundary_size))
        with pytest.raises(ValueError):
            solver.predict(loops, np.array([[grid.hx * 0.37, 0.0]]))
        with pytest.raises(ValueError):
            solver.predict(loops, np.array([[10.0, 0.0]]))

    def test_rejects_wrong_boundary_shape(self, small_geometry):
        solver = FDSubdomainSolver(small_geometry.subdomain_grid())
        with pytest.raises(ValueError):
            solver.predict(np.zeros((2, 7)), np.zeros((3, 2)))


class TestSDNetSubdomainSolver:
    def test_predictions_match_direct_model_call(self, small_sdnet, small_geometry, rng):
        solver = SDNetSubdomainSolver(small_sdnet)
        loops = rng.normal(size=(4, small_sdnet.boundary_size))
        points = small_geometry.center_line_local_coordinates()
        out = solver.predict(loops, points)
        direct = small_sdnet.predict(loops, np.broadcast_to(points, (4,) + points.shape).copy())
        assert np.allclose(out, direct)
        assert solver.inference_calls == 1
        assert solver.points_evaluated == 4 * points.shape[0]

    def test_max_batch_splits_but_preserves_results(self, small_sdnet, small_geometry, rng):
        loops = rng.normal(size=(5, small_sdnet.boundary_size))
        points = small_geometry.center_line_local_coordinates()
        full = SDNetSubdomainSolver(small_sdnet).predict(loops, points)
        chunked_solver = SDNetSubdomainSolver(small_sdnet, max_batch=2)
        chunked = chunked_solver.predict(loops, points)
        assert np.allclose(full, chunked)
        assert chunked_solver.inference_calls == 3

    def test_input_validation(self, small_sdnet):
        solver = SDNetSubdomainSolver(small_sdnet)
        with pytest.raises(ValueError):
            solver.predict(np.zeros((2, 5)), np.zeros((3, 2)))
        with pytest.raises(ValueError):
            solver.predict(np.zeros((2, small_sdnet.boundary_size)), np.zeros((3, 3)))
