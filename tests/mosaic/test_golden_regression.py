"""Golden regression tests: frozen reference outputs of MosaicFlowPredictor.

Small reference arrays (seeded via :mod:`repro.utils.rng`) are checked into
``tests/mosaic/golden/`` and compared **bitwise** against fresh runs, so
refactors of the geometry, predictor, assembly or serving layers cannot
silently drift the numerics.  Two cases are frozen: the classical 2x2-anchor
rectangular case and an L-shaped composite case covering the masked path.

Regenerate (after an *intentional* numerics change) with::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/mosaic/test_golden_regression.py

On mismatch the freshly computed arrays are dumped to
``test-artifacts/golden/`` so CI can upload them for triage.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np
import pytest

from repro.domains import CompositeDomain, CompositeMosaicGeometry
from repro.mosaic import FDSubdomainSolver, MosaicFlowPredictor, MosaicGeometry
from repro.utils import seeded_rng

GOLDEN_DIR = Path(__file__).parent / "golden"
ARTIFACT_DIR = Path(__file__).parents[2] / "test-artifacts" / "golden"
REGEN = os.environ.get("REPRO_REGEN_GOLDEN") == "1"


def _seeded_loop(geometry, seed: int) -> np.ndarray:
    """Deterministic harmonic-mix boundary loop along the geometry's boundary."""

    rng = seeded_rng(seed)
    w = rng.normal(size=3)
    return geometry.boundary_from_function(
        lambda x, y: w[0] * (x * x - y * y) + w[1] * x * y + w[2] * (x - 2.0 * y)
    )


def _run_case(name: str):
    if name == "mfp_rect_2x2":
        geometry = MosaicGeometry(subdomain_points=9, subdomain_extent=0.5,
                                  steps_x=4, steps_y=4)
    elif name == "mfp_l_shape":
        geometry = CompositeMosaicGeometry(9, 0.5, CompositeDomain.l_shape(6, 6, 3, 3))
    else:  # pragma: no cover - defensive
        raise ValueError(name)
    loop = _seeded_loop(geometry, seed=2026)
    solver = FDSubdomainSolver(geometry.subdomain_grid(), method="direct")
    result = MosaicFlowPredictor(geometry, solver, batched=True).run(
        loop, max_iterations=200, tol=1e-7
    )
    return {
        "boundary_loop": loop,
        "solution": result.solution,
        "lattice_field": result.lattice_field,
        "iterations": np.int64(result.iterations),
        "converged": np.bool_(result.converged),
        "deltas": np.asarray(result.deltas),
    }


@pytest.mark.parametrize("name", ["mfp_rect_2x2", "mfp_l_shape"])
def test_golden_outputs_are_bitwise_stable(name):
    path = GOLDEN_DIR / f"{name}.npz"
    actual = _run_case(name)

    if REGEN:
        GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        np.savez(path, **actual)
        pytest.skip(f"regenerated {path}")

    assert path.exists(), (
        f"golden file {path} missing; regenerate with REPRO_REGEN_GOLDEN=1"
    )
    golden = np.load(path)
    try:
        assert int(golden["iterations"]) == int(actual["iterations"])
        assert bool(golden["converged"]) == bool(actual["converged"])
        for key in ("boundary_loop", "solution", "lattice_field", "deltas"):
            np.testing.assert_array_equal(
                actual[key], golden[key],
                err_msg=f"{name}.{key} drifted from the golden reference",
            )
    except AssertionError:
        # Dump the freshly computed arrays next to the repo root so CI can
        # upload them as failure artifacts for triage.
        ARTIFACT_DIR.mkdir(parents=True, exist_ok=True)
        np.savez(ARTIFACT_DIR / f"{name}.actual.npz", **actual)
        raise
