"""Masked finite-difference Dirichlet solves on non-rectangular subsets."""

import numpy as np
import pytest

from repro.fd import (
    Grid2D,
    assemble_poisson,
    assemble_poisson_masked,
    solve_laplace,
    solve_laplace_masked,
)


def _rect_masks(grid):
    boundary = grid.boundary_mask()
    interior = ~boundary
    return interior, boundary


class TestRectangularReduction:
    def test_system_matches_rectangular_assembly(self):
        grid = Grid2D(7, 6, extent=(1.0, 0.8))
        rng = np.random.default_rng(3)
        boundary_field = np.where(grid.boundary_mask(), rng.normal(size=grid.shape), 0.0)
        forcing = rng.normal(size=grid.shape)
        A_ref, b_ref = assemble_poisson(grid, forcing, boundary_field)
        interior, boundary = _rect_masks(grid)
        A, b, index = assemble_poisson_masked(
            grid, interior, boundary, forcing, boundary_field
        )
        # same row-major interior ordering -> identical systems
        assert np.array_equal(index[1:-1, 1:-1].ravel(), np.arange(b.size))
        np.testing.assert_allclose(A.toarray(), A_ref.toarray(), atol=0, rtol=0)
        np.testing.assert_allclose(b, b_ref, atol=0, rtol=0)

    def test_solution_matches_rectangular_solver(self):
        grid = Grid2D(9, 9)
        rng = np.random.default_rng(5)
        boundary_field = np.where(grid.boundary_mask(), rng.normal(size=grid.shape), 0.0)
        interior, boundary = _rect_masks(grid)
        masked = solve_laplace_masked(grid, interior, boundary, boundary_field)
        reference = solve_laplace(grid, boundary_field, method="direct")
        np.testing.assert_allclose(masked, reference, atol=1e-12, rtol=0)


class TestMaskedProperties:
    def _l_masks(self, grid):
        # L-shaped region: the full square minus the (open) top-right quadrant
        ny, nx = grid.shape
        cut_r, cut_c = ny // 2, nx // 2
        valid = np.ones(grid.shape, dtype=bool)
        valid[cut_r + 1:, cut_c + 1:] = False
        inner = np.zeros_like(valid)
        inner[1:-1, 1:-1] = valid[1:-1, 1:-1]
        interior = inner.copy()
        padded = np.zeros((ny + 2, nx + 2), dtype=bool)
        padded[1:-1, 1:-1] = valid
        for dr in (-1, 0, 1):
            for dc in (-1, 0, 1):
                interior &= padded[1 + dr: 1 + dr + ny, 1 + dc: 1 + dc + nx]
        boundary = valid & ~interior
        return valid, interior, boundary

    def test_l_shape_maximum_principle_and_harmonicity(self):
        grid = Grid2D(13, 13)
        valid, interior, boundary = self._l_masks(grid)
        X, Y = grid.meshgrid()
        g = X * X - Y * Y
        solution = solve_laplace_masked(grid, interior, boundary, np.where(boundary, g, 0.0))
        assert (solution[~valid] == 0).all()
        assert solution[valid].min() >= g[boundary].min() - 1e-10
        assert solution[valid].max() <= g[boundary].max() + 1e-10
        # 5-point Laplacian vanishes at every unknown
        lap = (
            (solution[1:-1, 2:] - 2 * solution[1:-1, 1:-1] + solution[1:-1, :-2])
            / grid.hx ** 2
            + (solution[2:, 1:-1] - 2 * solution[1:-1, 1:-1] + solution[:-2, 1:-1])
            / grid.hy ** 2
        )
        assert np.max(np.abs(lap[interior[1:-1, 1:-1]])) < 1e-9

    def test_cg_matches_direct(self):
        grid = Grid2D(11, 11)
        valid, interior, boundary = self._l_masks(grid)
        rng = np.random.default_rng(11)
        g = np.where(boundary, rng.normal(size=grid.shape), 0.0)
        direct = solve_laplace_masked(grid, interior, boundary, g, method="direct")
        cg = solve_laplace_masked(grid, interior, boundary, g, method="cg", tol=1e-12)
        np.testing.assert_allclose(cg, direct, atol=1e-8, rtol=0)


class TestValidation:
    def test_rejects_overlapping_masks(self):
        grid = Grid2D(5, 5)
        mask = np.ones(grid.shape, dtype=bool)
        with pytest.raises(ValueError, match="disjoint"):
            assemble_poisson_masked(grid, mask, mask)

    def test_rejects_unbounded_interior(self):
        grid = Grid2D(5, 5)
        interior = np.ones(grid.shape, dtype=bool)
        boundary = np.zeros(grid.shape, dtype=bool)
        with pytest.raises(ValueError, match="bounding grid"):
            assemble_poisson_masked(grid, interior, boundary)

    def test_rejects_missing_neighbor(self):
        grid = Grid2D(5, 5)
        interior = np.zeros(grid.shape, dtype=bool)
        interior[2, 2] = True
        boundary = np.zeros(grid.shape, dtype=bool)
        boundary[1, 2] = boundary[3, 2] = boundary[2, 1] = True  # (2, 3) missing
        with pytest.raises(ValueError, match="non-domain neighbour"):
            assemble_poisson_masked(grid, interior, boundary)

    def test_rejects_empty_interior(self):
        grid = Grid2D(5, 5)
        empty = np.zeros(grid.shape, dtype=bool)
        with pytest.raises(ValueError, match="no unknowns"):
            assemble_poisson_masked(grid, empty, ~empty)
