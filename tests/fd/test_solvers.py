"""Discretization, smoothers, multigrid, CG and the high-level solvers."""

import numpy as np
import pytest

from repro.fd import (
    GeometricMultigrid,
    Grid2D,
    apply_laplacian,
    assemble_poisson,
    conjugate_gradient,
    gauss_seidel,
    get_smoother,
    laplacian_matrix,
    prolongation_1d,
    solve_laplace,
    solve_laplace_from_loop,
    solve_poisson,
    sor,
    weighted_jacobi,
)
from repro.pde import HARMONIC_FUNCTIONS


class TestDiscretization:
    def test_matrix_is_symmetric_positive_definite(self):
        grid = Grid2D(9, 7)
        A = laplacian_matrix(grid)
        dense = A.toarray()
        assert np.allclose(dense, dense.T)
        eigenvalues = np.linalg.eigvalsh(dense)
        assert eigenvalues.min() > 0

    def test_row_sums_reflect_boundary_coupling(self):
        grid = Grid2D(5, 5, extent=(1.0, 1.0))
        A = laplacian_matrix(grid)
        # Interior-of-interior rows have zero row sum; rows next to the
        # boundary are missing neighbours and have positive row sums.
        sums = np.asarray(A.sum(axis=1)).ravel()
        assert sums.max() > 0
        assert np.all(sums >= -1e-10)

    def test_apply_laplacian_of_exact_harmonic_is_zero(self):
        grid = Grid2D(17, 17)
        field = grid.field_from_function(HARMONIC_FUNCTIONS["saddle"])
        assert np.max(np.abs(apply_laplacian(grid, field))) < 1e-10

    def test_rhs_includes_boundary_and_forcing(self):
        grid = Grid2D(5, 5)
        boundary_field = np.zeros(grid.shape)
        boundary_field[0, :] = 1.0  # south edge
        A, b = assemble_poisson(grid, forcing=2.0, boundary_field=boundary_field)
        assert b.shape == (9,)
        # the three unknowns adjacent to the south edge see the boundary term
        assert np.count_nonzero(b > 2.0) == 3

    def test_forcing_shape_validation(self):
        grid = Grid2D(5, 5)
        with pytest.raises(ValueError):
            assemble_poisson(grid, forcing=np.zeros((2, 2)))


class TestSmoothers:
    def setup_method(self):
        self.grid = Grid2D(17, 17)
        self.A, self.b = assemble_poisson(
            self.grid, 1.0, np.zeros(self.grid.shape)
        )

    @pytest.mark.parametrize("smoother", [weighted_jacobi, gauss_seidel, sor])
    def test_smoothers_reduce_residual(self, smoother):
        # Stationary smoothers damp high-frequency error quickly but converge
        # slowly overall; 20 sweeps should still clearly reduce the residual.
        x0 = np.zeros_like(self.b)
        x1 = smoother(self.A, self.b, x0.copy(), iterations=20)
        r0 = np.linalg.norm(self.b - self.A @ x0)
        r1 = np.linalg.norm(self.b - self.A @ x1)
        assert r1 < 0.75 * r0

    def test_gauss_seidel_beats_jacobi(self):
        x_j = weighted_jacobi(self.A, self.b, np.zeros_like(self.b), iterations=10)
        x_gs = gauss_seidel(self.A, self.b, np.zeros_like(self.b), iterations=10)
        assert np.linalg.norm(self.b - self.A @ x_gs) < np.linalg.norm(self.b - self.A @ x_j)

    def test_get_smoother_lookup(self):
        assert get_smoother("jacobi") is weighted_jacobi
        with pytest.raises(ValueError):
            get_smoother("ilu")

    def test_sor_omega_validation(self):
        with pytest.raises(ValueError):
            sor(self.A, self.b, np.zeros_like(self.b), omega=2.5)


class TestMultigrid:
    def test_hierarchy_depth(self):
        grid = Grid2D(65, 65)
        A, _ = assemble_poisson(grid, 1.0)
        mg = GeometricMultigrid(A, (63, 63), min_size=64)
        assert mg.num_levels >= 3

    def test_prolongation_shape_and_partition_of_unity(self):
        P = prolongation_1d(9)
        assert P.shape == (9, 5)
        assert np.allclose(np.asarray(P.sum(axis=1)).ravel(), 1.0)
        with pytest.raises(ValueError):
            prolongation_1d(2)

    def test_v_cycle_converges_fast(self):
        grid = Grid2D(65, 65)
        A, b = assemble_poisson(grid, 1.0)
        mg = GeometricMultigrid(A, (63, 63))
        _, info = mg.solve(b, tol=1e-9, max_cycles=60)
        assert info["converged"]
        assert info["cycles"] < 60
        # Error contraction per cycle should be well below 1.
        history = info["history"]
        assert history[5] / history[0] < 0.2

    def test_multigrid_handles_non_power_of_two_sizes(self):
        grid = Grid2D(41, 29)
        A, b = assemble_poisson(grid, 1.0)
        mg = GeometricMultigrid(A, (27, 39))
        _, info = mg.solve(b, tol=1e-9)
        assert info["converged"]

    def test_zero_rhs_short_circuit(self):
        grid = Grid2D(17, 17)
        A, _ = assemble_poisson(grid, 0.0)
        mg = GeometricMultigrid(A, (15, 15))
        x, info = mg.solve(np.zeros(A.shape[0]))
        assert np.allclose(x, 0.0) and info["converged"]


class TestConjugateGradient:
    def test_converges_on_spd_system(self):
        grid = Grid2D(33, 33)
        A, b = assemble_poisson(grid, 1.0)
        x, info = conjugate_gradient(A, b, tol=1e-10)
        assert info["converged"]
        assert np.linalg.norm(b - A @ x) / np.linalg.norm(b) < 1e-9

    def test_multigrid_preconditioning_reduces_iterations(self):
        grid = Grid2D(65, 65)
        A, b = assemble_poisson(grid, 1.0)
        _, plain = conjugate_gradient(A, b, tol=1e-8)
        mg = GeometricMultigrid(A, (63, 63))
        _, preconditioned = conjugate_gradient(
            A, b, tol=1e-8, preconditioner=lambda r: mg.v_cycle(r)
        )
        assert preconditioned["iterations"] < plain["iterations"]

    def test_zero_rhs(self):
        grid = Grid2D(9, 9)
        A, _ = assemble_poisson(grid, 0.0)
        x, info = conjugate_gradient(A, np.zeros(A.shape[0]))
        assert np.allclose(x, 0.0) and info["converged"]


class TestHighLevelSolvers:
    @pytest.mark.parametrize("name", sorted(HARMONIC_FUNCTIONS))
    def test_laplace_reproduces_harmonic_functions(self, name):
        fn = HARMONIC_FUNCTIONS[name]
        grid = Grid2D(33, 33, extent=(1.0, 1.0))
        exact = grid.field_from_function(fn)
        boundary = np.where(grid.boundary_mask(), exact, 0.0)
        solution = solve_laplace(grid, boundary, method="direct")
        # Second-order accuracy: errors are tiny for low-order polynomials and
        # bounded by the truncation error otherwise.  Normalize by the field
        # amplitude because some harmonics (cosh-based) reach values of ~100.
        scale = np.max(np.abs(exact))
        assert np.max(np.abs(solution - exact)) / scale < 2e-3

    @pytest.mark.parametrize("method", ["direct", "multigrid", "cg"])
    def test_methods_agree(self, method):
        grid = Grid2D(25, 25)
        exact = grid.field_from_function(HARMONIC_FUNCTIONS["exp_sine"])
        boundary = np.where(grid.boundary_mask(), exact, 0.0)
        reference = solve_laplace(grid, boundary, method="direct")
        solution = solve_laplace(grid, boundary, method=method, tol=1e-11)
        assert np.max(np.abs(solution - reference)) < 1e-7

    def test_loop_interface(self):
        grid = Grid2D(17, 17, extent=(0.5, 0.5))
        exact = grid.field_from_function(HARMONIC_FUNCTIONS["product"])
        loop = grid.extract_boundary(exact)
        solution = solve_laplace_from_loop(grid, loop)
        assert np.max(np.abs(solution - exact)) < 1e-10

    def test_poisson_with_forcing_manufactured_solution(self):
        # u = sin(pi x) sin(pi y) solves -Laplace(u) = 2 pi^2 u with zero BC.
        grid = Grid2D(49, 49)
        exact = grid.field_from_function(lambda x, y: np.sin(np.pi * x) * np.sin(np.pi * y))
        forcing = 2 * np.pi ** 2 * exact
        solution = solve_poisson(grid, forcing, np.zeros(grid.shape), method="direct")
        assert np.max(np.abs(solution - exact)) < 2e-3

    def test_invalid_method(self):
        grid = Grid2D(9, 9)
        with pytest.raises(ValueError):
            solve_laplace(grid, np.zeros(grid.shape), method="spectral")

    def test_solution_satisfies_discrete_pde(self):
        grid = Grid2D(21, 21)
        rng = np.random.default_rng(0)
        boundary = np.where(grid.boundary_mask(), rng.normal(size=grid.shape), 0.0)
        solution = solve_laplace(grid, boundary, method="direct")
        assert np.max(np.abs(apply_laplacian(grid, solution))) < 1e-9
