"""Grid2D geometry, boundary loop conventions and subgrids."""

import numpy as np
import pytest

from repro.fd import Grid2D, boundary_loop_indices


class TestGridGeometry:
    def test_spacing_and_shape(self):
        grid = Grid2D(5, 9, extent=(1.0, 2.0), origin=(0.5, -1.0))
        assert grid.shape == (9, 5)
        assert grid.hx == pytest.approx(0.25)
        assert grid.hy == pytest.approx(0.25)
        assert grid.num_points == 45
        assert grid.num_interior == 3 * 7

    def test_coordinates(self):
        grid = Grid2D(3, 3, extent=(2.0, 4.0), origin=(1.0, 1.0))
        assert np.allclose(grid.x_coords(), [1.0, 2.0, 3.0])
        assert np.allclose(grid.y_coords(), [1.0, 3.0, 5.0])
        X, Y = grid.meshgrid()
        assert X.shape == (3, 3)
        assert X[0, 2] == pytest.approx(3.0) and Y[2, 0] == pytest.approx(5.0)

    def test_points_ordering_row_major(self):
        grid = Grid2D(3, 3)
        points = grid.points()
        assert points.shape == (9, 2)
        assert np.allclose(points[1], [0.5, 0.0])   # second point moves along x
        assert np.allclose(points[3], [0.0, 0.5])   # fourth point starts next row

    def test_validation(self):
        with pytest.raises(ValueError):
            Grid2D(2, 5)
        with pytest.raises(ValueError):
            Grid2D(5, 5, extent=(0.0, 1.0))


class TestBoundaryLoop:
    def test_loop_length_and_corners_duplicated(self):
        rows, cols = boundary_loop_indices(4, 3)
        assert len(rows) == 2 * 4 + 2 * 3
        # corner (0, 0) appears in the bottom edge and the left edge
        corners = list(zip(rows.tolist(), cols.tolist()))
        assert corners.count((0, 0)) == 2

    def test_loop_covers_exactly_the_boundary(self):
        grid = Grid2D(6, 5)
        rows, cols = grid.boundary_indices()
        mask = np.zeros(grid.shape, dtype=bool)
        mask[rows, cols] = True
        assert np.array_equal(mask, grid.boundary_mask())

    def test_extract_insert_roundtrip(self):
        grid = Grid2D(7, 6)
        field = grid.field_from_function(lambda x, y: np.sin(x) + np.cos(y))
        loop = grid.extract_boundary(field)
        assert loop.shape == (grid.boundary_size,)
        rebuilt = grid.insert_boundary(loop)
        assert np.allclose(rebuilt[grid.boundary_mask()], field[grid.boundary_mask()])
        assert np.allclose(rebuilt[~grid.boundary_mask()], 0.0)

    def test_insert_into_existing_field(self):
        grid = Grid2D(5, 5)
        base = np.full(grid.shape, 7.0)
        loop = np.zeros(grid.boundary_size)
        out = grid.insert_boundary(loop, base)
        assert np.allclose(out[grid.boundary_mask()], 0.0)
        assert np.allclose(out[~grid.boundary_mask()], 7.0)
        assert np.allclose(base, 7.0)  # original untouched

    def test_boundary_from_function_matches_extract(self):
        grid = Grid2D(6, 8, extent=(2.0, 1.0))
        fn = lambda x, y: x ** 2 - 3 * y
        field = grid.field_from_function(fn)
        assert np.allclose(grid.boundary_from_function(fn), grid.extract_boundary(field))

    def test_boundary_coordinates_order(self):
        grid = Grid2D(3, 3, extent=(1.0, 1.0))
        coords = grid.boundary_coordinates()
        # first sample is the lower-left corner, traversing the bottom edge first
        assert np.allclose(coords[0], [0.0, 0.0])
        assert np.allclose(coords[2], [1.0, 0.0])

    def test_wrong_sizes_raise(self):
        grid = Grid2D(5, 5)
        with pytest.raises(ValueError):
            grid.extract_boundary(np.zeros((4, 4)))
        with pytest.raises(ValueError):
            grid.insert_boundary(np.zeros(7))


class TestSubgrid:
    def test_subgrid_shares_spacing_and_origin(self):
        grid = Grid2D(9, 9, extent=(2.0, 2.0), origin=(1.0, 1.0))
        sub = grid.subgrid(2, 4, 5, 3)
        assert sub.shape == (5, 3)
        assert sub.hx == pytest.approx(grid.hx)
        assert sub.origin[0] == pytest.approx(1.0 + 4 * grid.hx)
        assert sub.origin[1] == pytest.approx(1.0 + 2 * grid.hy)

    def test_out_of_range_window(self):
        grid = Grid2D(5, 5)
        with pytest.raises(ValueError):
            grid.subgrid(3, 3, 4, 4)
