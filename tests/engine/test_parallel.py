"""Parallel plan execution: wave schedules, bitwise parity, plan ownership."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.autodiff import Tensor, no_grad
from repro.engine import (
    CompiledValueAndGrad,
    ExecutionPlan,
    ParallelExecutionPlan,
    compile_module,
    schedule_waves,
)
from repro.models import SDNet
from repro.nn import MLP
from repro.pde.losses import laplace_residual_loss
from repro.utils import seeded_rng


def _sdnet():
    return SDNet(boundary_size=32, hidden_size=24, trunk_layers=3,
                 embedding_channels=(2,), rng=5)


def _sdnet_inputs(batch=6, points=11, seed=0):
    rng = seeded_rng(seed)
    return (
        rng.normal(size=(batch, 32)),
        rng.uniform(size=(points, 2)) * 0.5,
    )


class TestScheduleWaves:
    def test_waves_partition_steps_and_respect_dependencies(self):
        compiled = compile_module(_sdnet())
        graph = compiled.graph_for(*_sdnet_inputs())
        waves = schedule_waves(graph)

        executable = [n for n in graph if not n.is_placeholder and not n.is_constant]
        flattened = [i for wave in waves for i in wave]
        # Every step appears exactly once, and wave-major order is a
        # topological refinement: within a wave indices keep graph order.
        assert sorted(flattened) == list(range(len(executable)))
        assert all(list(wave) == sorted(wave) for wave in waves)

        wave_of = {}
        for depth, wave in enumerate(waves):
            for step in wave:
                wave_of[executable[step].id] = depth
        for step, node in enumerate(executable):
            for parent in node.inputs:
                if parent in wave_of:  # compute parents live in earlier waves
                    assert wave_of[parent] < wave_of[node.id]

    def test_split_architecture_has_parallel_waves(self):
        # SDNet's boundary branch and trunk branch are independent until the
        # combine, so at least one wave must hold two or more steps.
        compiled = compile_module(_sdnet())
        graph = compiled.graph_for(*_sdnet_inputs())
        assert any(len(wave) > 1 for wave in schedule_waves(graph))


class TestParallelParity:
    def test_parallel_plan_is_bitwise_identical(self):
        compiled = compile_module(_sdnet())
        arrays = [np.asarray(a) for a in _sdnet_inputs(batch=8, points=13, seed=1)]
        graph = compiled.graph_for(*arrays)
        sequential = ExecutionPlan(graph).run(list(arrays))
        # offload_bytes=0 forces every wave through the pool-overlap path.
        parallel = ParallelExecutionPlan(graph, offload_bytes=0).run(list(arrays))
        assert len(sequential) == len(parallel)
        for ours, theirs in zip(parallel, sequential):
            assert ours.shape == theirs.shape
            assert ours.tobytes() == theirs.tobytes()

    def test_compile_module_parallel_matches_eager(self):
        model = _sdnet()
        compiled = compile_module(model, parallel=True)
        inputs = _sdnet_inputs(batch=5, points=9, seed=2)
        ours = compiled.predict(*inputs)
        with no_grad():
            theirs = model(*[Tensor(np.asarray(a)) for a in inputs]).data
        assert ours.tobytes() == theirs.tobytes()
        # Repeated calls reuse the same parallel plan and stay identical.
        assert compiled.predict(*inputs).tobytes() == theirs.tobytes()

    def test_offloaded_step_errors_propagate(self):
        compiled = compile_module(_sdnet())
        arrays = [np.asarray(a) for a in _sdnet_inputs()]
        plan = ParallelExecutionPlan(compiled.graph_for(*arrays), offload_bytes=0)
        with pytest.raises(Exception):
            plan.run([arrays[0][:, :-1], arrays[1]])  # wrong input shape


class TestPlanOwnership:
    def _run_in_thread(self, fn):
        box = {}

        def target():
            try:
                fn()
            except BaseException as exc:  # noqa: BLE001 - relayed to the test
                box["error"] = exc

        thread = threading.Thread(target=target)
        thread.start()
        thread.join()
        return box.get("error")

    def test_execution_plan_rejects_second_thread(self):
        compiled = compile_module(_sdnet())
        arrays = [np.asarray(a) for a in _sdnet_inputs()]
        plan = ExecutionPlan(compiled.graph_for(*arrays))
        plan.run(list(arrays))  # binds the plan to this thread

        error = self._run_in_thread(lambda: plan.run(list(arrays)))
        assert isinstance(error, RuntimeError)
        assert "one plan per thread" in str(error) or "not thread-safe" in str(error)

    def test_parallel_plan_rejects_second_thread(self):
        compiled = compile_module(_sdnet())
        arrays = [np.asarray(a) for a in _sdnet_inputs()]
        plan = ParallelExecutionPlan(compiled.graph_for(*arrays), offload_bytes=0)
        plan.run(list(arrays))
        error = self._run_in_thread(lambda: plan.run(list(arrays)))
        assert isinstance(error, RuntimeError)

    def test_bucketed_plan_rejects_second_thread(self):
        model = SDNet(boundary_size=16, hidden_size=10, trunk_layers=2,
                      embedding_channels=(2,), rng=3)
        program = CompiledValueAndGrad(
            lambda g, x: laplace_residual_loss(model, g, x, method="taylor"),
            model, grad_transform=lambda l: 1.0 * l,
        )
        rng = seeded_rng(0)
        g = rng.normal(size=(8, 16))
        x = rng.uniform(size=(8, 4, 2)) * 0.5
        program(g, x)  # builds + binds this thread's bucketed plan
        plans = program._plans()._entries
        bucketed = next(
            plan for key, (plan, _) in plans.items() if key[0] == "bucket"
        )
        # The ownership check fires before any buffer is touched, so no
        # arrays are needed to observe the rejection.
        error = self._run_in_thread(lambda: bucketed.run([], bucketed.template.capacity))
        assert isinstance(error, RuntimeError)
        assert "not thread-safe" in str(error)

    def test_per_thread_compiled_calls_still_work(self):
        # CompiledModule hands each thread its own plan; concurrent calls
        # through the module must not trip the ownership check.
        model = _sdnet()
        compiled = compile_module(model)
        inputs = _sdnet_inputs(batch=4, points=7, seed=3)
        expected = compiled.predict(*inputs).tobytes()
        errors, outputs = [], []

        def worker():
            try:
                outputs.append(compiled.predict(*inputs).tobytes())
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert all(out == expected for out in outputs)
