"""Property-based engine parity: CompiledModule(x) == module(x), bitwise.

Random MLP / SDNet / ConcatSolver architectures, batch sizes including the
1-row and 0-row edge cases, and mixed input dtypes are swept with seeded
generators; every compiled output must be bit-for-bit equal to the eager
forward pass (the engine's documented parity contract).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.autodiff import Tensor, no_grad
from repro.engine import compile_module
from repro.models import ConcatSolver, SDNet
from repro.nn import MLP
from repro.utils import seeded_rng

BATCH_SIZES = (0, 1, 3)


def _bitwise(a: np.ndarray, b: np.ndarray) -> bool:
    return a.shape == b.shape and a.tobytes() == b.tobytes()


def _eager(module, *inputs):
    with no_grad():
        return module(*[Tensor(x) for x in inputs]).data


@pytest.mark.parametrize("case", range(8))
def test_random_mlp_architectures(case):
    rng = seeded_rng(1000 + case)
    depth = int(rng.integers(1, 4))
    sizes = [int(rng.integers(1, 6))] + [int(rng.integers(1, 12)) for _ in range(depth)] + [1]
    activation = ["gelu", "tanh", "relu", "sine"][case % 4]
    mlp = MLP(sizes, activation=activation, rng=rng)
    compiled = compile_module(mlp, validate=True)
    for batch in BATCH_SIZES:
        x = rng.normal(size=(batch, sizes[0]))
        assert _bitwise(compiled(x).data, _eager(mlp, x)), (
            f"MLP {sizes} ({activation}) diverged at batch {batch}"
        )


@pytest.mark.parametrize("case", range(6))
def test_random_sdnet_architectures(case):
    rng = seeded_rng(2000 + case)
    boundary = int(rng.integers(2, 10)) * 4
    channels = [(), (2,), (2, 3)][case % 3]
    net = SDNet(
        boundary_size=boundary,
        hidden_size=int(rng.integers(4, 20)),
        trunk_layers=int(rng.integers(1, 4)),
        embedding_channels=channels,
        conv_kernel_size=[3, 5][case % 2],
        activation=["gelu", "tanh"][case % 2],
        rng=rng,
    )
    compiled = compile_module(net, validate=True)
    q = int(rng.integers(1, 9))
    for batch in BATCH_SIZES:
        g = rng.normal(size=(batch, boundary))
        x = rng.normal(size=(batch, q, 2))
        assert _bitwise(compiled(g, x).data, _eager(net, g, x)), (
            f"SDNet(boundary={boundary}, channels={channels}) diverged "
            f"at batch {batch}"
        )


@pytest.mark.parametrize("case", range(3))
def test_random_concat_baseline(case):
    rng = seeded_rng(3000 + case)
    boundary = int(rng.integers(2, 8)) * 4
    model = ConcatSolver(
        boundary_size=boundary,
        hidden_size=int(rng.integers(4, 16)),
        trunk_layers=int(rng.integers(1, 3)),
        rng=rng,
    )
    compiled = compile_module(model, validate=True)
    for batch in BATCH_SIZES:
        g = rng.normal(size=(batch, boundary))
        x = rng.normal(size=(batch, 4, 2))
        assert _bitwise(compiled(g, x).data, _eager(model, g, x))


def test_unbatched_inputs_match():
    rng = seeded_rng(7)
    net = SDNet(boundary_size=16, hidden_size=8, trunk_layers=1,
                embedding_channels=(2,), rng=rng)
    compiled = compile_module(net, validate=True)
    g = rng.normal(size=16)
    x = rng.normal(size=(5, 2))
    assert _bitwise(compiled(g, x).data, net.predict(g, x))
    # the unbatched signature coexists with batched ones
    gb = rng.normal(size=(3, 16))
    xb = rng.normal(size=(3, 5, 2))
    assert _bitwise(compiled(gb, xb).data, net.predict(gb, xb))
    assert len(compiled.signatures) == 2


@pytest.mark.parametrize("dtype", [np.float64, np.float32, np.int64])
def test_input_dtypes_coerce_like_eager(dtype):
    """Non-float64 inputs convert exactly as the eager Tensor constructor."""

    rng = seeded_rng(11)
    mlp = MLP([4, 8, 1], rng=rng)
    compiled = compile_module(mlp, validate=True)
    x = (rng.normal(size=(6, 4)) * 8).astype(dtype)
    assert _bitwise(compiled(x).data, _eager(mlp, x))


def test_broadcast_batch_promotion_matches():
    """g batch 1 against x batch 3 exercises the broadcast_to kernel."""

    rng = seeded_rng(13)
    net = SDNet(boundary_size=16, hidden_size=8, trunk_layers=1,
                embedding_channels=(), rng=rng)
    compiled = compile_module(net, validate=True)
    g = rng.normal(size=(1, 16))
    x = rng.normal(size=(3, 5, 2))
    assert _bitwise(compiled(g, x).data, _eager(net, g, x))


def test_validate_wraps_inputs_like_trace():
    """validate=True must feed the eager check Tensors, not raw ndarrays."""

    from repro.autodiff import ops
    from repro.nn import Module, Parameter

    class RawOperator(Module):
        def __init__(self):
            super().__init__()
            self.w = Parameter(np.array([2.0, 3.0]))

        def forward(self, x):
            return x * self.w  # ndarray * Tensor would take numpy's path

    net = RawOperator()
    compiled = compile_module(net, validate=True)
    x = np.array([1.5, -0.5])
    assert _bitwise(compiled(x).data, _eager(net, x))


def test_parameter_update_after_retrace():
    rng = seeded_rng(17)
    mlp = MLP([3, 6, 1], rng=rng)
    compiled = compile_module(mlp)
    x = rng.normal(size=(4, 3))
    compiled(x)
    state = {name: value * 2.0 for name, value in mlp.state_dict().items()}
    mlp.load_state_dict(state)
    compiled.retrace()
    assert _bitwise(compiled(x).data, _eager(mlp, x))
