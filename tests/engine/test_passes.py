"""Compiler passes: folding, gather lowering, fusion, DCE, custom rules."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autodiff import Tensor, no_grad, ops
from repro.engine import (
    FUSION_RULES,
    ExecutionPlan,
    FusionRule,
    eliminate_dead_code,
    fold_constants,
    fuse_elementwise,
    optimize,
    register_fusion_rule,
    trace,
)
from repro.models import SDNet
from repro.nn import MLP, Linear, Module, Parameter


def _run(graph, *arrays):
    return ExecutionPlan(graph).run([np.asarray(a, dtype=float) for a in arrays])


def _eager(module, *arrays):
    with no_grad():
        return module(*[Tensor(a) for a in arrays]).data


class TestFoldConstants:
    def test_weight_transpose_folds(self):
        layer = Linear(3, 4, rng=np.random.default_rng(0))
        graph = trace(layer, np.zeros((2, 3)))
        assert graph.op_counts().get("transpose") == 1
        fold_constants(graph)
        assert "transpose" not in graph.op_counts()

    def test_folded_value_is_eager_identical(self):
        layer = Linear(3, 4, rng=np.random.default_rng(0))
        x = np.random.default_rng(1).normal(size=(5, 3))
        graph = optimize(trace(layer, x))
        (out,) = _run(graph, x)
        assert out.tobytes() == _eager(layer, x).tobytes()

    def test_constant_subgraphs_collapse(self):
        class WeightChain(Module):
            def __init__(self):
                super().__init__()
                self.layer = Linear(4, 4, rng=np.random.default_rng(0))

            def forward(self, x):
                # reshape(transpose(W)) is a two-node constant subgraph
                folded = ops.reshape(ops.transpose(self.layer.weight), (2, 8))
                return ops.matmul(x, folded)

        graph = trace(WeightChain(), np.zeros((3, 2)))
        fold_constants(graph)
        eliminate_dead_code(graph)
        counts = graph.op_counts()
        assert "transpose" not in counts and "reshape" not in counts
        assert counts["matmul"] == 1


class TestLowerGathers:
    def test_conv_im2col_gather_becomes_take(self):
        net = SDNet(boundary_size=16, hidden_size=8, trunk_layers=1,
                    embedding_channels=(2,), rng=0)
        graph = optimize(trace(net, np.zeros((2, 16)), np.zeros((2, 5, 2))))
        counts = graph.op_counts()
        assert counts.get("take", 0) >= 1
        # circular-padding slices stay as (view) getitems
        assert all(
            n.op != "getitem" or isinstance(n.attrs["index"], tuple)
            for n in graph
        )

    def test_take_matches_fancy_indexing_bitwise(self):
        net = SDNet(boundary_size=16, hidden_size=8, trunk_layers=1,
                    embedding_channels=(2,), rng=0)
        rng = np.random.default_rng(3)
        g, x = rng.normal(size=(4, 16)), rng.normal(size=(4, 5, 2))
        graph = optimize(trace(net, g, x))
        (out,) = _run(graph, g, x)
        assert out.tobytes() == _eager(net, g, x).tobytes()


class TestFusion:
    def test_gelu_chain_fuses_to_one_node(self):
        mlp = MLP([3, 8, 8, 1], activation="gelu", rng=np.random.default_rng(0))
        graph = optimize(trace(mlp, np.zeros((2, 3))))
        counts = graph.op_counts()
        assert counts == {
            "placeholder": 1, "constant": 6, "affine_gelu": 2, "affine": 1,
        }

    def test_tanh_trunk_fuses_affine_tanh(self):
        mlp = MLP([3, 8, 1], activation="tanh", rng=np.random.default_rng(0))
        graph = optimize(trace(mlp, np.zeros((2, 3))))
        assert graph.op_counts().get("affine_tanh") == 1

    def test_fused_outputs_bitwise_equal_unfused(self):
        mlp = MLP([3, 16, 16, 1], rng=np.random.default_rng(5))
        x = np.random.default_rng(6).normal(size=(9, 3))
        unfused = eliminate_dead_code(fold_constants(trace(mlp, x)))
        fused = optimize(trace(mlp, x))
        (a,) = _run(unfused, x)
        (b,) = _run(fused, x)
        assert a.tobytes() == b.tobytes() == _eager(mlp, x).tobytes()

    def test_shared_activation_input_not_absorbed(self):
        """A value consumed outside the chain must block fusion of the chain."""

        class Branchy(Module):
            def __init__(self):
                super().__init__()
                self.layer = Linear(3, 3, rng=np.random.default_rng(0))

            def forward(self, x):
                pre = self.layer(x)
                from repro.nn.activations import GELU

                return GELU()(pre) + pre  # pre has two consumers

        net = Branchy()
        x = np.random.default_rng(1).normal(size=(4, 3))
        graph = optimize(trace(net, x))
        # affine must survive un-merged into affine_gelu (two consumers)
        counts = graph.op_counts()
        assert counts.get("affine") == 1
        assert "affine_gelu" not in counts
        (out,) = _run(graph, x)
        assert out.tobytes() == _eager(net, x).tobytes()


class TestLoweringAndFusionGuards:
    def test_multi_array_index_is_left_alone(self):
        """Gathers with several index arrays must not crash the pass."""

        rows = np.array([0, 2])
        cols = np.array([1, 0])

        class CrossIndex(Module):
            def forward(self, x):
                return ops.getitem(x, (rows, cols)) * 1.0

        net = CrossIndex()
        x = np.random.default_rng(0).normal(size=(3, 2))
        graph = optimize(trace(net, x))
        assert graph.op_counts().get("getitem") == 1
        (out,) = _run(graph, x)
        assert out.tobytes() == _eager(net, x).tobytes()

    def test_widening_bias_blocks_affine_fusion(self):
        """A bias broadcasting *beyond* the matmul shape must not fuse."""

        class Widening(Module):
            def __init__(self):
                super().__init__()
                self.weight = Parameter(np.random.default_rng(0).normal(size=(4, 1)))
                self.bias = Parameter(np.random.default_rng(1).normal(size=(3,)))

            def forward(self, x):
                return ops.matmul(x, self.weight) + self.bias  # (2,1)+(3,)->(2,3)

        net = Widening()
        x = np.random.default_rng(2).normal(size=(2, 4))
        graph = optimize(trace(net, x))
        counts = graph.op_counts()
        assert "affine" not in counts and counts["matmul"] == 1
        (out,) = _run(graph, x)
        assert out.shape == (2, 3)
        assert out.tobytes() == _eager(net, x).tobytes()


class TestDeadCodeElimination:
    def test_unused_branch_removed_placeholders_kept(self):
        class DeadBranch(Module):
            def forward(self, x):
                _ = ops.exp(x) * 3.0  # never used
                return x + 1.0

        graph = trace(DeadBranch(), np.ones(4))
        assert "exp" in graph.op_counts()
        eliminate_dead_code(graph)
        counts = graph.op_counts()
        assert "exp" not in counts and "mul" not in counts
        assert counts["placeholder"] == 1 and counts["add"] == 1


class TestCustomFusionRules:
    def test_register_and_apply_custom_rule(self):
        # x + x -> double(x), executed via the generic fallback kernel.
        from repro.engine import kernels as kernel_mod

        def match_double(graph, node, consumers):
            a, b = node.inputs
            if a == b and not graph.node(a).is_constant:
                return {"op": "double", "inputs": (a,), "attrs": {}, "absorbed": []}
            return None

        rule = FusionRule("double-add", root_ops=("add",), matcher=match_double)
        kernel_mod._EVALUATORS["double"] = lambda v, n: v[0] + v[0]
        register_fusion_rule(rule)
        try:

            class SelfAdd(Module):
                def forward(self, x):
                    return x + x

            x = np.random.default_rng(0).normal(size=(5,))
            graph = fuse_elementwise(trace(SelfAdd(), x))
            assert graph.op_counts().get("double") == 1
            (out,) = _run(graph, x)
            assert out.tobytes() == (x + x).tobytes()
        finally:
            FUSION_RULES.remove(rule)
            del kernel_mod._EVALUATORS["double"]

    def test_rules_are_ordered(self):
        names = [rule.name for rule in FUSION_RULES]
        assert names.index("erf-gelu") < names.index("affine-activation")
        assert names.index("affine") < names.index("affine-activation")


class TestOptimizePipeline:
    def test_optimize_validates(self):
        mlp = MLP([2, 4, 1], rng=np.random.default_rng(0))
        graph = optimize(trace(mlp, np.zeros((3, 2))))
        graph.validate()  # no exception

    def test_custom_pipeline(self):
        mlp = MLP([2, 4, 1], rng=np.random.default_rng(0))
        graph = optimize(trace(mlp, np.zeros((3, 2))), passes=[eliminate_dead_code])
        # no folding requested: the weight transposes remain
        assert graph.op_counts().get("transpose") == 2
