"""Bucketed batch-dimension plans and the plan-cache memory budget."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import (
    CompiledValueAndGrad,
    ExecutionPlan,
    PlanCache,
    bucket_capacity,
    compile_module,
)
from repro.engine.bucketing import BucketingError
from repro.autodiff import Tensor, no_grad
from repro.models import SDNet
from repro.nn import MLP
from repro.pde.losses import laplace_residual_loss
from repro.utils import seeded_rng


def _program_for(model, **options):
    return CompiledValueAndGrad(
        lambda g, x: laplace_residual_loss(model, g, x, method="taylor"),
        model, grad_transform=lambda l: 1.0 * l, **options,
    )


class TestBucketCapacity:
    def test_power_of_two_buckets(self):
        assert [bucket_capacity(b) for b in (1, 2, 3, 4, 5, 8, 9, 17, 32, 33)] == \
            [1, 2, 4, 4, 8, 8, 16, 32, 32, 64]

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            bucket_capacity(0)


class TestBucketedReuse:
    def test_plans_reused_across_batch_sizes_without_retracing(self):
        """>= 3 distinct collocation batch sizes share one bucket template."""

        model = SDNet(boundary_size=16, hidden_size=10, trunk_layers=2,
                      embedding_channels=(2,), rng=3)
        program = _program_for(model)
        rng = seeded_rng(0)
        for batch in (20, 32, 17, 25, 29):  # all in the capacity-32 bucket
            g = rng.normal(size=(batch, 16))
            x = rng.uniform(size=(batch, 4, 2)) * 0.5
            program(g, x)
        stats = program.stats
        assert stats.calls == 5
        assert stats.bucket_templates == 1
        assert stats.traces == 3           # two fit probes + one verify, once
        assert stats.plan_builds == 1      # one bucketed plan on this thread
        # capacity (32) is built with the plan; the other four sizes add
        # view-specializations
        assert stats.specializations == 4
        assert stats.bucket_fallbacks == 0

    def test_distinct_buckets_get_distinct_templates(self):
        model = SDNet(boundary_size=16, hidden_size=8, trunk_layers=1,
                      embedding_channels=(), rng=1)
        program = _program_for(model)
        rng = seeded_rng(1)
        for batch in (3, 6, 12):  # buckets 4, 8, 16
            g = rng.normal(size=(batch, 16))
            x = rng.uniform(size=(batch, 4, 2)) * 0.5
            program(g, x)
        assert program.stats.bucket_templates == 3
        assert program.stats.traces == 9  # 3 probes per bucket

    def test_bucketing_disabled_traces_per_shape(self):
        model = SDNet(boundary_size=16, hidden_size=8, trunk_layers=1,
                      embedding_channels=(), rng=1)
        program = _program_for(model, bucketing=False)
        rng = seeded_rng(2)
        for batch in (5, 6, 7):
            g = rng.normal(size=(batch, 16))
            x = rng.uniform(size=(batch, 4, 2)) * 0.5
            program(g, x)
        assert program.stats.bucket_templates == 0
        assert program.stats.traces == 3

    def test_point_budget_change_is_a_new_template(self):
        """The bucket key includes every non-batch extent (q, boundary)."""

        model = SDNet(boundary_size=16, hidden_size=8, trunk_layers=1,
                      embedding_channels=(), rng=1)
        program = _program_for(model)
        rng = seeded_rng(3)
        for q in (4, 6):
            g = rng.normal(size=(6, 16))
            x = rng.uniform(size=(6, q, 2)) * 0.5
            program(g, x)
        assert program.stats.bucket_templates == 2

    def test_retrace_drops_templates(self):
        model = SDNet(boundary_size=16, hidden_size=8, trunk_layers=1,
                      embedding_channels=(), rng=1)
        program = _program_for(model)
        rng = seeded_rng(4)
        g = rng.normal(size=(6, 16))
        x = rng.uniform(size=(6, 4, 2)) * 0.5
        program(g, x)
        program.retrace()
        program(g, x)
        assert program.stats.traces == 6
        assert program.stats.plan_bytes > 0

    def test_bucketed_outputs_do_not_alias_plan_buffers(self):
        model = SDNet(boundary_size=16, hidden_size=8, trunk_layers=1,
                      embedding_channels=(), rng=5)
        program = _program_for(model)
        rng = seeded_rng(5)
        g = rng.normal(size=(6, 16))
        x = rng.uniform(size=(6, 4, 2)) * 0.5
        loss_a, grads_a = program(g, x)
        snapshot = [a.copy() for a in grads_a]
        program(rng.normal(size=(6, 16)), rng.uniform(size=(6, 4, 2)))
        for kept, snap in zip(grads_a, snapshot):
            np.testing.assert_array_equal(kept, snap)


class TestTemplateFailureFallsBack:
    def test_value_dependent_program_falls_back_to_exact_plans(self):
        """A program whose constants defy the affine laws still runs right."""

        mlp = MLP([2, 4, 1], rng=np.random.default_rng(0))
        from repro.autodiff import Tensor, ops

        def loss_fn(x):
            out = mlp(x)
            # a batch-dependent constant that is neither affine nor
            # reciprocal-affine in the batch size
            weird = float(np.sqrt(x.shape[0]))
            return ops.mean(out * out) * weird

        program = CompiledValueAndGrad(loss_fn, mlp)
        rng = seeded_rng(6)
        for batch in (5, 7):
            x = rng.normal(size=(batch, 2))
            compiled_loss, _ = program(x)
            eager_loss, _ = program.eager(x)
            assert compiled_loss.tobytes() == eager_loss.tobytes()
        assert program.stats.bucket_fallbacks >= 1
        assert program.stats.bucket_templates == 0


class TestPlanCache:
    class _FakePlan:
        def __init__(self, nbytes):
            self.buffer_bytes = nbytes

    def test_lru_eviction_respects_byte_budget(self):
        evicted = []
        cache = PlanCache(max_bytes=100, on_evict=lambda k, n: evicted.append((k, n)))
        cache.put("a", self._FakePlan(40))
        cache.put("b", self._FakePlan(40))
        cache.put("c", self._FakePlan(40))  # evicts "a"
        assert evicted == [("a", 40)]
        assert cache.bytes_in_use == 80
        assert cache.get("a") is None and cache.get("b") is not None

    def test_get_refreshes_recency(self):
        cache = PlanCache(max_bytes=100)
        cache.put("a", self._FakePlan(40))
        cache.put("b", self._FakePlan(40))
        cache.get("a")
        cache.put("c", self._FakePlan(40))  # evicts "b", not "a"
        assert cache.get("a") is not None
        assert cache.get("b") is None

    def test_single_oversized_plan_is_kept(self):
        cache = PlanCache(max_bytes=10)
        cache.put("big", self._FakePlan(1000))
        assert cache.get("big") is not None
        assert len(cache) == 1

    def test_unbounded_by_default(self):
        cache = PlanCache()
        for index in range(64):
            cache.put(index, self._FakePlan(1 << 20))
        assert len(cache) == 64


class TestCompiledModulePlanBudget:
    def test_eviction_counters_and_bounded_memory(self):
        mlp = MLP([3, 8, 1], rng=np.random.default_rng(0))
        probe = ExecutionPlan(compile_module(mlp).graph_for(np.zeros((4, 3))))
        budget = int(probe.buffer_bytes * 2.5)
        compiled = compile_module(mlp, max_plan_bytes=budget)
        rng = seeded_rng(7)
        expected = {}
        for batch in range(2, 10):
            x = rng.normal(size=(batch, 3))
            with no_grad():
                eager_out = mlp(Tensor(x)).data.copy()
            expected[batch] = (eager_out, compiled.predict(x))
        for batch, (eager, engine) in expected.items():
            assert eager.tobytes() == engine.tobytes(), f"batch {batch} drifted"
        stats = compiled.stats
        assert stats.plan_evictions > 0
        assert stats.plan_bytes <= budget
        assert stats.plan_bytes_evicted > 0
        assert stats.plan_bytes >= 0

    def test_evicted_plans_rebuild_transparently(self):
        mlp = MLP([2, 4, 1], rng=np.random.default_rng(1))
        compiled = compile_module(mlp, max_plan_bytes=1)  # evict almost always
        rng = seeded_rng(8)
        a, b = rng.normal(size=(3, 2)), rng.normal(size=(5, 2))
        with no_grad():
            expected_a = mlp(Tensor(a)).data.copy()
            expected_b = mlp(Tensor(b)).data.copy()
        for _ in range(3):
            assert compiled.predict(a).tobytes() == expected_a.tobytes()
            assert compiled.predict(b).tobytes() == expected_b.tobytes()
        assert compiled.stats.plan_evictions >= 4
        # graphs are cached independently of plans: no re-tracing happened
        assert compiled.stats.traces == 2


class TestValueAndGradPlanBudget:
    def test_jet_plan_cache_evicts_under_budget(self):
        model = SDNet(boundary_size=16, hidden_size=8, trunk_layers=1,
                      embedding_channels=(), rng=9)
        program = _program_for(model, max_plan_bytes=1)
        rng = seeded_rng(9)
        for batch in (3, 6, 12, 3, 6):  # three buckets, revisited
            g = rng.normal(size=(batch, 16))
            x = rng.uniform(size=(batch, 4, 2)) * 0.5
            loss_c, grads_c = program(g, x)
            loss_e, grads_e = program.eager(g, x)
            assert loss_c.tobytes() == loss_e.tobytes()
            for a, b in zip(grads_c, grads_e):
                assert a.tobytes() == b.tobytes()
        assert program.stats.plan_evictions >= 2
        # templates survive eviction: revisits re-specialize, never re-trace
        assert program.stats.traces == 9
