"""Property-based parity of compiled jet programs vs the eager tape.

The contract under test: for every supported architecture, batch size and
seed-direction count, the compiled Taylor-mode physics loss — forward AND
parameter gradients — is **bitwise identical** to eager mode, including
across in-place parameter updates and bucketed-plan reuse.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.autodiff import Tensor, grad, ops
from repro.engine import CompiledValueAndGrad, compile_value_and_grad
from repro.models import SDNet
from repro.nn import MLP
from repro.pde.losses import PinnLoss, laplace_residual_loss
from repro.utils import seeded_rng


def _loss_program(model):
    return lambda g, x: laplace_residual_loss(model, g, x, method="taylor")


def _eager_reference(model, g, x, weight=1.0):
    loss = laplace_residual_loss(model, Tensor(g), Tensor(x), method="taylor")
    grads = grad(weight * loss, model.parameters())
    return loss.data, [t.data for t in grads]


def _assert_bitwise(compiled_out, eager_out, context=""):
    loss_c, grads_c = compiled_out
    loss_e, grads_e = eager_out
    assert loss_c.tobytes() == loss_e.tobytes(), f"loss drifted {context}"
    assert len(grads_c) == len(grads_e)
    for index, (a, b) in enumerate(zip(grads_c, grads_e)):
        assert a.shape == b.shape
        assert a.tobytes() == b.tobytes(), f"grad {index} drifted {context}"


#: (coord_dim, hidden, trunk_layers, embedding_channels, activation)
ARCHITECTURES = [
    (2, 12, 1, (2,), "gelu"),
    (2, 16, 3, (), "gelu"),
    (2, 8, 2, (2, 2), "tanh"),
    (3, 10, 2, (2,), "gelu"),
    (1, 8, 1, (), "tanh"),
]


class TestCompiledLaplacianParity:
    @pytest.mark.parametrize("coord_dim,hidden,layers,channels,act", ARCHITECTURES)
    def test_random_architectures_bitwise(self, coord_dim, hidden, layers, channels, act):
        model = SDNet(
            boundary_size=24, coord_dim=coord_dim, hidden_size=hidden,
            trunk_layers=layers, embedding_channels=channels, activation=act,
            rng=11,
        )
        program = CompiledValueAndGrad(
            _loss_program(model), model,
            grad_transform=lambda l: 1.0 * l, validate=True,
        )
        rng = seeded_rng(3)
        for batch in (5, 3, 7):
            g = rng.normal(size=(batch, 24))
            x = rng.uniform(size=(batch, 6, coord_dim)) * 0.5
            _assert_bitwise(
                program(g, x), _eager_reference(model, g, x),
                context=f"(batch={batch}, act={act})",
            )

    @pytest.mark.parametrize("batch", [0, 1, 2, 8, 9, 16, 17, 31, 32])
    def test_edge_and_bucket_boundary_batch_sizes(self, batch):
        """Batch 0/1 and the power-of-two bucket boundaries stay bitwise."""

        model = SDNet(boundary_size=16, hidden_size=10, trunk_layers=2,
                      embedding_channels=(2,), rng=5)
        program = CompiledValueAndGrad(
            _loss_program(model), model, grad_transform=lambda l: 1.0 * l,
        )
        rng = seeded_rng(batch)
        g = rng.normal(size=(batch, 16))
        x = rng.uniform(size=(batch, 4, 2)) * 0.5
        with np.errstate(divide="ignore", invalid="ignore"):
            compiled_loss, compiled_grads = program(g, x)
            eager_loss, eager_grads = _eager_reference(model, g, x)
        if batch == 0:
            # mean over an empty batch is nan either way — compare bytes
            assert compiled_loss.tobytes() == eager_loss.tobytes()
        else:
            _assert_bitwise((compiled_loss, compiled_grads),
                            (eager_loss, eager_grads), context=f"batch={batch}")

    def test_weighted_gradients_bitwise(self):
        model = SDNet(boundary_size=16, hidden_size=8, trunk_layers=1,
                      embedding_channels=(), rng=2)
        weight = 0.37
        program = CompiledValueAndGrad(
            _loss_program(model), model, grad_transform=lambda l: weight * l,
        )
        rng = seeded_rng(9)
        g = rng.normal(size=(4, 16))
        x = rng.uniform(size=(4, 5, 2)) * 0.5
        _assert_bitwise(program(g, x), _eager_reference(model, g, x, weight=weight))

    def test_inplace_parameter_updates_flow_without_retrace(self):
        """Optimizer-style in-place updates keep the compiled program fresh."""

        model = SDNet(boundary_size=16, hidden_size=10, trunk_layers=2,
                      embedding_channels=(2,), rng=4)
        program = CompiledValueAndGrad(
            _loss_program(model), model, grad_transform=lambda l: 1.0 * l,
        )
        rng = seeded_rng(1)
        g = rng.normal(size=(6, 16))
        x = rng.uniform(size=(6, 4, 2)) * 0.5
        for step in range(3):
            compiled = program(g, x)
            _assert_bitwise(compiled, _eager_reference(model, g, x),
                            context=f"step={step}")
            _, grads = compiled
            for param, garr in zip(model.parameters(), grads):
                param.data -= 1e-3 * garr
        assert program.stats.traces == 3  # one bucket, three probes, no retrace

    def test_stacked_equals_loop_laplacian(self, rng):
        """The direction-stacked jet layout reproduces the loop bitwise."""

        model = SDNet(boundary_size=16, hidden_size=12, trunk_layers=2,
                      embedding_channels=(2,), rng=8)
        g = Tensor(rng.normal(size=(3, 16)))
        x = Tensor(rng.uniform(size=(3, 5, 2)) * 0.5)
        stacked = model.laplacian_taylor(g, x, stacked=True)
        looped = model.laplacian_taylor(g, x, stacked=False)
        assert stacked.data.tobytes() == looped.data.tobytes()
        loss_s = ops.mean(stacked * stacked)
        loss_l = ops.mean(looped * looped)
        grads_s = grad(loss_s, model.parameters())
        grads_l = grad(loss_l, model.parameters())
        for a, b in zip(grads_s, grads_l):
            np.testing.assert_allclose(a.data, b.data, atol=1e-12)


class TestGenericValueAndGrad:
    def test_mlp_regression_loss_bitwise(self):
        """The jet compiler is generic: any primitive-built loss compiles."""

        mlp = MLP([3, 8, 8, 1], activation="gelu", rng=np.random.default_rng(0))
        target_rng = seeded_rng(12)
        y = target_rng.normal(size=(64, 1))

        def loss_fn(x):
            diff = mlp(x) - Tensor(y[: x.shape[0]])
            return ops.mean(diff * diff)

        program = compile_value_and_grad(loss_fn, mlp, validate=True)
        rng = seeded_rng(7)
        for batch in (6, 3, 4):
            x = rng.normal(size=(batch, 3))
            compiled_loss, compiled_grads = program(x)
            loss = loss_fn(Tensor(x))
            grads = grad(loss, mlp.parameters())
            _assert_bitwise(
                (compiled_loss, compiled_grads),
                (loss.data, [t.data for t in grads]),
                context=f"mlp batch={batch}",
            )

    def test_tanh_mlp_loss_bitwise(self):
        mlp = MLP([2, 6, 1], activation="tanh", rng=np.random.default_rng(3))

        def loss_fn(x):
            out = mlp(x)
            return ops.mean(out * out)

        program = compile_value_and_grad(loss_fn, mlp)
        x = seeded_rng(4).normal(size=(5, 2))
        compiled_loss, compiled_grads = program(x)
        loss = loss_fn(Tensor(x))
        grads = grad(loss, mlp.parameters())
        _assert_bitwise((compiled_loss, compiled_grads),
                        (loss.data, [t.data for t in grads]))


class TestPinnLossEngine:
    def test_retrace_refreshes_replaced_parameters(self):
        """Wholesale Parameter replacement + retrace() keeps gradients live."""

        from repro.nn.module import Parameter

        model = SDNet(boundary_size=16, hidden_size=8, trunk_layers=1,
                      embedding_channels=(), rng=3)
        program = CompiledValueAndGrad(
            _loss_program(model), model, grad_transform=lambda l: 1.0 * l,
        )
        rng = seeded_rng(11)
        g = rng.normal(size=(4, 16))
        x = rng.uniform(size=(4, 5, 2)) * 0.5
        program(g, x)
        # replace every Parameter object (not an in-place update)
        for module in model.modules():
            for name, param in list(module._parameters.items()):
                setattr(module, name, Parameter(param.data.copy() * 1.1))
        program.retrace()
        _assert_bitwise(program(g, x), _eager_reference(model, g, x),
                        context="after parameter replacement")

    def test_pde_weight_change_invalidates_compiled_program(self):
        """Weight annealing must not serve gradients traced at the old weight."""

        model = SDNet(boundary_size=16, hidden_size=8, trunk_layers=1,
                      embedding_channels=(), rng=7)
        loss = PinnLoss(pde_weight=1.0, engine=True)
        rng = seeded_rng(13)
        g = rng.normal(size=(3, 16))
        x = rng.uniform(size=(3, 4, 2)) * 0.5
        loss.pde_term_and_grads(model, Tensor(g), Tensor(x))
        loss.pde_weight = 2.0
        _, grads_c = loss.pde_term_and_grads(model, Tensor(g), Tensor(x))
        _, grads_e = _eager_reference(model, g, x, weight=2.0)
        for a, b in zip(grads_c, grads_e):
            assert a.tobytes() == b.tobytes()

    def test_pde_term_and_grads_parity(self):
        model = SDNet(boundary_size=16, hidden_size=10, trunk_layers=2,
                      embedding_channels=(2,), rng=6)
        eager_loss = PinnLoss(pde_weight=0.5)
        engine_loss = PinnLoss(pde_weight=0.5, engine=True)
        rng = seeded_rng(2)
        g = rng.normal(size=(4, 16))
        x = rng.uniform(size=(4, 5, 2)) * 0.5
        value_e, grads_e = eager_loss.pde_term_and_grads(model, Tensor(g), Tensor(x))
        value_c, grads_c = engine_loss.pde_term_and_grads(model, Tensor(g), Tensor(x))
        assert value_e == value_c
        for a, b in zip(grads_e, grads_c):
            assert a.tobytes() == b.tobytes()

    def test_engine_requires_taylor_method(self):
        with pytest.raises(ValueError, match="taylor"):
            PinnLoss(engine=True, laplacian_method="autograd")

    def test_engine_rejects_models_without_taylor_path(self):
        loss = PinnLoss(engine=True)
        mlp = MLP([2, 4, 1], rng=np.random.default_rng(0))
        with pytest.raises(ValueError, match="laplacian_taylor"):
            loss.pde_term_and_grads(mlp, np.zeros((2, 2)), np.zeros((2, 3, 2)))


class TestTrainerEngine:
    def test_engine_training_is_bitwise_identical(self, tiny_dataset):
        from repro.training import Trainer, TrainingConfig

        states = {}
        histories = {}
        for engine in (False, True):
            model = SDNet(
                boundary_size=tiny_dataset.grid.boundary_size, hidden_size=10,
                trunk_layers=1, embedding_channels=(2,), rng=0,
            )
            config = TrainingConfig(
                epochs=1, batch_size=4, data_points_per_domain=8,
                collocation_points_per_domain=8, max_lr=3e-3, seed=0,
                engine=engine,
            )
            histories[engine] = Trainer(model, config, tiny_dataset).fit()
            states[engine] = model.state_dict()
        assert histories[False].train_loss == histories[True].train_loss
        assert histories[False].train_pde_loss == histories[True].train_pde_loss
        for name in states[False]:
            assert states[False][name].tobytes() == states[True][name].tobytes()
