"""Tracing: graph capture, decomposition, patch hygiene, thread safety."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.autodiff import Tensor, ops
from repro.engine import Graph, TraceError, trace
from repro.nn import MLP, Linear, Module


class TestGraphCapture:
    def test_linear_layer_graph(self):
        layer = Linear(3, 4, rng=np.random.default_rng(0))
        graph = trace(layer, np.zeros((5, 3)))
        counts = graph.op_counts()
        assert counts["placeholder"] == 1
        assert counts["matmul"] == 1
        assert counts["transpose"] == 1  # weight transpose, recorded pre-folding
        assert counts["add"] == 1  # bias
        assert len(graph.outputs) == 1
        assert graph.node(graph.outputs[0]).shape == (5, 4)

    def test_parameters_become_named_constants(self):
        layer = Linear(3, 4, rng=np.random.default_rng(0))
        graph = trace(layer, np.zeros((2, 3)))
        params = {n.param for n in graph if n.is_constant and n.param}
        assert params == {"weight", "bias"}

    def test_parameter_constants_alias_storage(self):
        layer = Linear(3, 4, rng=np.random.default_rng(0))
        graph = trace(layer, np.zeros((2, 3)))
        weight_nodes = [n for n in graph if n.param == "weight"]
        assert len(weight_nodes) == 1
        assert weight_nodes[0].value is layer.weight.data

    def test_composite_ops_decompose_into_primitives(self):
        class MeanNet(Module):
            def forward(self, x):
                return ops.mean(x, axis=1)  # mean = div(sum(...))

        graph = trace(MeanNet(), np.ones((4, 6)))
        counts = graph.op_counts()
        assert "mean" not in counts
        assert counts["sum"] == 1
        assert counts["div"] == 1

    def test_graph_is_topological_and_printable(self):
        mlp = MLP([3, 8, 1], rng=np.random.default_rng(1))
        graph = trace(mlp, np.zeros((2, 3)))
        graph.validate()
        text = str(graph)
        assert "placeholder" in text and "matmul" in text and "# output" in text

    def test_scalar_operands_lift_to_constants(self):
        class ScaleNet(Module):
            def forward(self, x):
                return 2.5 * x + 1.0

        graph = trace(ScaleNet(), np.ones(3))
        consts = [n for n in graph if n.is_constant]
        values = sorted(float(n.value) for n in consts)
        assert values == [1.0, 2.5]

    def test_non_tensor_output_raises(self):
        class BadNet(Module):
            def forward(self, x):
                return x.data  # raw ndarray escapes the traced world

        with pytest.raises(TraceError):
            trace(BadNet(), np.ones(3))

    def test_trace_specializes_to_shapes(self):
        mlp = MLP([3, 4, 1], rng=np.random.default_rng(0))
        g2 = trace(mlp, np.zeros((2, 3)))
        g7 = trace(mlp, np.zeros((7, 3)))
        assert g2.node(g2.outputs[0]).shape == (2, 1)
        assert g7.node(g7.outputs[0]).shape == (7, 1)


class TestPatchHygiene:
    def test_ops_restored_after_trace(self):
        originals = {name: getattr(ops, name) for name in ("add", "matmul", "erf")}
        trace(MLP([2, 3, 1], rng=np.random.default_rng(0)), np.zeros((1, 2)))
        for name, fn in originals.items():
            assert getattr(ops, name) is fn

    def test_ops_restored_after_failed_trace(self):
        original_add = ops.add

        class Exploding(Module):
            def forward(self, x):
                raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            trace(Exploding(), np.ones(2))
        assert ops.add is original_add

    def test_nested_trace_on_one_thread_rejected(self):
        outer_mlp = MLP([2, 2], rng=np.random.default_rng(0))

        class Nesting(Module):
            def forward(self, x):
                trace(outer_mlp, np.zeros((1, 2)))
                return x

        with pytest.raises(TraceError):
            trace(Nesting(), np.ones(2))

    def test_eager_math_unaffected_during_concurrent_trace(self):
        """A thread with no active tracer must record nothing, anywhere."""

        mlp = MLP([4, 16, 1], rng=np.random.default_rng(0))
        stop = threading.Event()
        graphs: list[Graph] = []

        def tracing_loop():
            while not stop.is_set():
                graphs.append(trace(mlp, np.zeros((3, 4))))

        worker = threading.Thread(target=tracing_loop)
        worker.start()
        try:
            x = Tensor(np.linspace(0.0, 1.0, 8), requires_grad=True)
            for _ in range(50):
                y = (x * x).sum()
                y.backward()
                assert x.grad is not None
                x.zero_grad()
        finally:
            stop.set()
            worker.join()
        # Every trace of the same module/shape captured the same graph.
        sizes = {len(g) for g in graphs}
        assert len(sizes) == 1

    def test_concurrent_traces_are_isolated(self):
        mlp_small = MLP([2, 3, 1], rng=np.random.default_rng(0))
        mlp_big = MLP([2, 3, 3, 3, 1], rng=np.random.default_rng(1))
        results: dict[str, Graph] = {}
        errors: list[Exception] = []

        def run(name, module):
            try:
                for _ in range(20):
                    results[name] = trace(module, np.zeros((2, 2)))
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [
            threading.Thread(target=run, args=("small", mlp_small)),
            threading.Thread(target=run, args=("big", mlp_big)),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(results["big"]) > len(results["small"])
        results["small"].validate()
        results["big"].validate()
