"""Runtime behaviour: plan caching, threading, solver/server integration."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.engine import CompiledModule, ModuleCache, compile_module, compile_solver
from repro.mosaic import (
    FDSubdomainSolver,
    MosaicFlowPredictor,
    MosaicGeometry,
    SDNetSubdomainSolver,
)
from repro.models import SDNet
from repro.nn import MLP
from repro.serving import FusedBatchRunner, Server, SolveRequest
from repro.utils import seeded_rng


@pytest.fixture(scope="module")
def engine_sdnet(request):
    geometry = MosaicGeometry(subdomain_points=9, subdomain_extent=0.5,
                              steps_x=4, steps_y=4)
    net = SDNet(
        boundary_size=geometry.subdomain_grid().boundary_size,
        hidden_size=12,
        trunk_layers=2,
        embedding_channels=(2,),
        rng=7,
    )
    return geometry, net


def _loop(geometry, seed=0):
    rng = seeded_rng(seed)
    w = rng.normal(size=3)
    return geometry.boundary_from_function(
        lambda x, y: w[0] * (x * x - y * y) + w[1] * x * y + w[2] * (x - 2.0 * y)
    )


class TestPlanCaching:
    def test_one_trace_per_shape_signature(self):
        mlp = MLP([3, 8, 1], rng=np.random.default_rng(0))
        compiled = compile_module(mlp)
        x = np.zeros((4, 3))
        compiled(x)
        compiled(x + 1)
        compiled(np.zeros((9, 3)))
        assert compiled.stats.traces == 2
        assert compiled.stats.plan_builds == 2
        assert compiled.stats.calls == 3

    def test_precompiled_example_inputs(self):
        mlp = MLP([3, 8, 1], rng=np.random.default_rng(0))
        compiled = compile_module(mlp, np.zeros((4, 3)))
        assert compiled.stats.traces == 1
        compiled(np.ones((4, 3)))
        assert compiled.stats.traces == 1

    def test_copy_outputs_false_reuses_buffer(self):
        mlp = MLP([3, 8, 2], rng=np.random.default_rng(0))
        compiled = compile_module(mlp, copy_outputs=False)
        first = compiled.predict(np.zeros((4, 3)))
        snapshot = first.copy()
        second = compiled.predict(np.ones((4, 3)))
        assert second is first  # same plan buffer
        assert not np.array_equal(first, snapshot)  # overwritten in place
        # copying mode returns fresh arrays
        copying = compile_module(mlp)
        a = copying.predict(np.zeros((4, 3)))
        b = copying.predict(np.ones((4, 3)))
        assert a is not b

    def test_attribute_passthrough(self):
        net = SDNet(boundary_size=16, hidden_size=8, trunk_layers=1,
                    embedding_channels=(), rng=0)
        compiled = compile_module(net)
        assert compiled.boundary_size == 16
        assert compiled.config()["boundary_size"] == 16

    def test_retrace_invalidates_other_threads_plans(self):
        mlp = MLP([2, 4, 1], rng=np.random.default_rng(0))
        compiled = compile_module(mlp)
        x = np.ones((3, 2))
        compiled(x)
        builds_before = compiled.stats.plan_builds
        compiled.retrace()
        compiled(x)
        assert compiled.stats.plan_builds == builds_before + 1


class TestThreadSafety:
    def test_shared_compiled_module_across_threads(self):
        """Ranks share traces but never buffers: concurrent calls stay exact."""

        net = SDNet(boundary_size=16, hidden_size=8, trunk_layers=1,
                    embedding_channels=(2,), rng=3)
        compiled = compile_module(net)
        rng = seeded_rng(5)
        inputs = [
            (rng.normal(size=(4, 16)), rng.normal(size=(4, 6, 2)))
            for _ in range(4)
        ]
        expected = [net.predict(g, x) for g, x in inputs]
        failures: list[str] = []

        def worker(index):
            g, x = inputs[index]
            for _ in range(30):
                out = compiled.predict(g, x)
                if out.tobytes() != expected[index].tobytes():
                    failures.append(f"thread {index} diverged")
                    return

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not failures
        assert compiled.stats.traces == 1  # one shared graph
        assert compiled.stats.plan_builds == 4  # one plan per thread


class TestModuleCache:
    def test_lru_eviction_and_hits(self):
        cache = ModuleCache(maxsize=2)
        mlp = MLP([2, 2], rng=np.random.default_rng(0))
        a = cache.get_or_create("a", lambda: compile_module(mlp))
        assert cache.get_or_create("a", lambda: compile_module(mlp)) is a
        cache.get_or_create("b", lambda: compile_module(mlp))
        cache.get_or_create("c", lambda: compile_module(mlp))  # evicts "a"
        assert len(cache) == 2
        fresh = cache.get_or_create("a", lambda: compile_module(mlp))
        assert fresh is not a
        assert cache.hits == 1 and cache.misses == 4

    def test_compile_solver_uses_cache(self):
        net = SDNet(boundary_size=16, hidden_size=8, trunk_layers=1,
                    embedding_channels=(), rng=0)
        cache = ModuleCache()
        first = compile_solver(SDNetSubdomainSolver(net), cache=cache, cache_key="geo")
        second = compile_solver(SDNetSubdomainSolver(net), cache=cache, cache_key="geo")
        assert first.engine is second.engine
        assert cache.hits == 1

    def test_compile_solver_passes_non_neural_through(self):
        geometry = MosaicGeometry(subdomain_points=9, subdomain_extent=0.5,
                                  steps_x=4, steps_y=4)
        solver = FDSubdomainSolver(geometry.subdomain_grid())
        assert compile_solver(solver) is solver

    def test_engine_solver_keeps_identity_and_counters(self, engine_sdnet):
        """Caller-held solver references keep accruing inference counters."""

        geometry, net = engine_sdnet
        solver = SDNetSubdomainSolver(net)
        predictor = MosaicFlowPredictor(geometry, solver, engine=True)
        assert predictor.solver is solver
        assert solver.engine is not None
        predictor.run(_loop(geometry), max_iterations=8, tol=1e-7)
        assert solver.inference_calls > 0
        assert solver.points_evaluated > 0


class TestIntegrationParity:
    def test_predictor_engine_bitwise(self, engine_sdnet):
        geometry, net = engine_sdnet
        loop = _loop(geometry)
        eager = MosaicFlowPredictor(geometry, SDNetSubdomainSolver(net)).run(
            loop, max_iterations=24, tol=1e-7
        )
        engine = MosaicFlowPredictor(
            geometry, SDNetSubdomainSolver(net), engine=True
        ).run(loop, max_iterations=24, tol=1e-7)
        assert eager.iterations == engine.iterations
        assert eager.converged == engine.converged
        np.testing.assert_array_equal(eager.solution, engine.solution)
        np.testing.assert_array_equal(eager.lattice_field, engine.lattice_field)

    def test_fused_runner_engine_bitwise(self, engine_sdnet):
        geometry, net = engine_sdnet
        loops = np.stack([_loop(geometry, seed) for seed in range(3)])
        eager = FusedBatchRunner(geometry, SDNetSubdomainSolver(net)).run(
            loops, 1e-6, 24
        )
        engine = FusedBatchRunner(
            geometry, SDNetSubdomainSolver(net), engine=True
        ).run(loops, 1e-6, 24)
        for a, b in zip(eager, engine):
            assert a.iterations == b.iterations
            np.testing.assert_array_equal(a.solution, b.solution)

    def test_server_engine_bitwise_and_cached_modules(self, engine_sdnet):
        geometry, net = engine_sdnet
        loops = [_loop(geometry, seed) for seed in range(4)]

        def factory(geom):
            return SDNetSubdomainSolver(net)

        solutions = {}
        for engine_on in (False, True):
            server = Server(solver_factory=factory, world_size=2, engine=engine_on)
            ids = [
                server.submit(
                    SolveRequest.create(geometry, loop, tol=1e-6, max_iterations=24)
                )
                for loop in loops
            ]
            results = server.drain()
            solutions[engine_on] = [results[i].solution for i in ids]
            if engine_on:
                # every worker rank reused one compiled module per geometry
                assert len(server.engine_modules) == 1
                assert server.engine_modules.hits >= 1
        for eager, engine in zip(solutions[False], solutions[True]):
            np.testing.assert_array_equal(eager, engine)

    def test_distributed_engine_bitwise(self, engine_sdnet):
        from repro.mosaic.distributed import DistributedMosaicFlowPredictor

        geometry, net = engine_sdnet
        loop = _loop(geometry)
        eager = DistributedMosaicFlowPredictor(
            geometry, lambda: SDNetSubdomainSolver(net)
        ).run(4, loop, max_iterations=16, tol=1e-7)
        engine = DistributedMosaicFlowPredictor(
            geometry, lambda: SDNetSubdomainSolver(net), engine=True
        ).run(4, loop, max_iterations=16, tol=1e-7)
        assert eager[0].iterations == engine[0].iterations
        np.testing.assert_array_equal(eager[0].solution, engine[0].solution)


class TestCheckpointRoundTrip:
    def test_compiled_module_roundtrip_is_bitwise(self, tmp_path):
        """Save a CompiledModule's source, re-trace on load: outputs bitwise."""

        from repro.io import load_compiled_sdnet, save_checkpoint

        rng = seeded_rng(23)
        net = SDNet(boundary_size=16, hidden_size=8, trunk_layers=1,
                    embedding_channels=(2,), rng=rng)
        compiled = compile_module(net)
        g = rng.normal(size=(3, 16))
        x = rng.normal(size=(3, 5, 2))
        before = compiled(g, x).data

        path = save_checkpoint(compiled, tmp_path / "compiled_sdnet")
        restored = load_compiled_sdnet(path)
        assert isinstance(restored, CompiledModule)
        after = restored(g, x).data
        assert before.tobytes() == after.tobytes()

    def test_load_model_into_compiled_retraces(self, tmp_path):
        from repro.io import load_model, save_checkpoint

        rng = seeded_rng(29)
        source = SDNet(boundary_size=16, hidden_size=8, trunk_layers=1,
                       embedding_channels=(), rng=1)
        path = save_checkpoint(source, tmp_path / "source")

        target = SDNet(boundary_size=16, hidden_size=8, trunk_layers=1,
                       embedding_channels=(), rng=2)
        compiled = compile_module(target)
        g = rng.normal(size=(2, 16))
        x = rng.normal(size=(2, 4, 2))
        compiled(g, x)  # build a plan against the old parameters
        load_model(path, compiled)
        assert compiled(g, x).data.tobytes() == source.predict(g, x).tobytes()
