"""Optimizers: SGD, Adam, AdamW, LAMB."""

import numpy as np
import pytest

from repro.autodiff import Tensor, ops
from repro.nn import Parameter
from repro.optim import LAMB, SGD, Adam, AdamW


def quadratic_params(values=(5.0, -3.0)):
    """Parameters for minimizing f(p) = sum(p^2); optimum at zero."""

    return [Parameter(np.array([v])) for v in values]


def set_quadratic_grads(params):
    for p in params:
        p.grad = Tensor(2.0 * p.data)


def run_optimizer(optimizer, params, steps=200):
    for _ in range(steps):
        set_quadratic_grads(params)
        optimizer.step()
    return max(abs(float(p.data[0])) for p in params)


class TestOptimizerBase:
    def test_empty_parameter_list_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_nonpositive_lr_rejected(self):
        with pytest.raises(ValueError):
            Adam(quadratic_params(), lr=0.0)

    def test_zero_grad_clears(self):
        params = quadratic_params()
        opt = SGD(params, lr=0.1)
        set_quadratic_grads(params)
        opt.zero_grad()
        assert all(p.grad is None for p in params)

    def test_missing_grad_treated_as_zero(self):
        params = quadratic_params((1.0,))
        opt = SGD(params, lr=0.1)
        opt.step()  # no grad set -> parameter unchanged
        assert params[0].data[0] == pytest.approx(1.0)

    def test_state_dict_roundtrip(self):
        params = quadratic_params()
        opt = Adam(params, lr=0.01)
        set_quadratic_grads(params)
        opt.step()
        state = opt.state_dict()
        opt2 = Adam(quadratic_params(), lr=0.5)
        opt2.load_state_dict(state)
        assert opt2.lr == opt.lr and opt2.step_count == 1


class TestConvergenceOnQuadratic:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda p: SGD(p, lr=0.1),
            lambda p: SGD(p, lr=0.05, momentum=0.9),
            lambda p: Adam(p, lr=0.2),
            lambda p: AdamW(p, lr=0.2),
            lambda p: LAMB(p, lr=0.05),
        ],
    )
    def test_all_optimizers_reach_the_optimum(self, factory):
        params = quadratic_params()
        assert run_optimizer(factory(params), params) < 1e-2

    def test_sgd_matches_manual_update(self):
        params = quadratic_params((2.0,))
        opt = SGD(params, lr=0.1)
        set_quadratic_grads(params)
        opt.step()
        assert params[0].data[0] == pytest.approx(2.0 - 0.1 * 4.0)

    def test_sgd_weight_decay(self):
        params = quadratic_params((1.0,))
        opt = SGD(params, lr=0.1, weight_decay=0.5)
        params[0].grad = Tensor(np.array([0.0]))
        opt.step()
        assert params[0].data[0] == pytest.approx(1.0 - 0.1 * 0.5)

    def test_invalid_momentum(self):
        with pytest.raises(ValueError):
            SGD(quadratic_params(), lr=0.1, momentum=1.5)

    def test_invalid_betas(self):
        with pytest.raises(ValueError):
            Adam(quadratic_params(), lr=0.1, betas=(1.0, 0.999))


class TestAdamFamilyDetails:
    def test_adam_first_step_is_lr_sized(self):
        # With bias correction, the very first Adam step has magnitude ~lr.
        params = quadratic_params((10.0,))
        opt = Adam(params, lr=0.1)
        set_quadratic_grads(params)
        opt.step()
        assert abs(10.0 - params[0].data[0]) == pytest.approx(0.1, rel=1e-4)

    def test_adamw_decouples_weight_decay(self):
        # With zero gradient, AdamW still shrinks the weights by lr*wd*w.
        params = quadratic_params((1.0,))
        opt = AdamW(params, lr=0.1, weight_decay=0.1)
        params[0].grad = Tensor(np.array([0.0]))
        opt.step()
        assert params[0].data[0] == pytest.approx(1.0 - 0.1 * 0.1 * 1.0)

    def test_lamb_trust_ratio_scales_update(self):
        # Two parameters with the same gradient but different norms get
        # different effective step sizes (layer-wise adaptation).
        big = Parameter(np.array([100.0]))
        small = Parameter(np.array([0.1]))
        opt = LAMB([big, small], lr=0.01)
        big.grad = Tensor(np.array([1.0]))
        small.grad = Tensor(np.array([1.0]))
        opt.step()
        assert abs(100.0 - big.data[0]) > abs(0.1 - small.data[0])

    def test_lamb_trust_ratio_clamped(self):
        p = Parameter(np.array([1e6]))
        opt = LAMB([p], lr=0.001, max_trust_ratio=10.0)
        p.grad = Tensor(np.array([1e-12]))
        before = p.data.copy()
        opt.step()
        # trust ratio capped at 10 -> step no larger than lr * 10 * |direction|
        assert abs(p.data[0] - before[0]) <= 0.001 * 10.0 * 1.0 + 1e-9
