"""Learning-rate schedules and the large-batch scaling rules."""

import numpy as np
import pytest

from repro.nn import Parameter
from repro.optim import (
    SGD,
    ConstantLR,
    WarmupPolynomialDecay,
    scale_lr_sqrt,
    scale_warmup_linear,
)


def make_optimizer(lr=1.0):
    return SGD([Parameter(np.zeros(1))], lr=lr)


class TestWarmupPolynomialDecay:
    def test_warmup_ramps_linearly_to_max(self):
        opt = make_optimizer()
        sched = WarmupPolynomialDecay(opt, max_lr=1.0, total_iterations=1000, warmup_fraction=0.1)
        lrs = [sched.step() for _ in range(100)]
        assert lrs[0] == pytest.approx(1.0 / 100)
        assert lrs[-1] == pytest.approx(1.0)
        assert all(b >= a for a, b in zip(lrs, lrs[1:]))

    def test_linear_decay_reaches_zero(self):
        opt = make_optimizer()
        sched = WarmupPolynomialDecay(opt, max_lr=2.0, total_iterations=100, warmup_fraction=0.0)
        lrs = [sched.step() for _ in range(100)]
        assert lrs[0] == pytest.approx(2.0)
        assert lrs[-1] == pytest.approx(2.0 / 100, abs=1e-9)
        assert sched.get_lr(10_000) == pytest.approx(0.0)

    def test_polynomial_power_changes_shape(self):
        opt = make_optimizer()
        linear = WarmupPolynomialDecay(opt, 1.0, 100, warmup_fraction=0.0, power=1.0)
        quadratic = WarmupPolynomialDecay(opt, 1.0, 100, warmup_fraction=0.0, power=2.0)
        assert quadratic.get_lr(50) < linear.get_lr(50)

    def test_end_lr_floor(self):
        opt = make_optimizer()
        sched = WarmupPolynomialDecay(opt, 1.0, 10, warmup_fraction=0.0, end_lr=0.1)
        assert sched.get_lr(10) == pytest.approx(0.1)

    def test_updates_optimizer_lr(self):
        opt = make_optimizer(lr=123.0)
        sched = WarmupPolynomialDecay(opt, max_lr=0.5, total_iterations=10, warmup_fraction=0.0)
        sched.step()
        assert opt.lr == pytest.approx(0.5)

    def test_invalid_arguments(self):
        opt = make_optimizer()
        with pytest.raises(ValueError):
            WarmupPolynomialDecay(opt, 1.0, 0)
        with pytest.raises(ValueError):
            WarmupPolynomialDecay(opt, 1.0, 10, warmup_fraction=1.5)


class TestConstantLR:
    def test_holds_value(self):
        opt = make_optimizer(lr=0.3)
        sched = ConstantLR(opt)
        for _ in range(5):
            assert sched.step() == pytest.approx(0.3)


class TestScalingRules:
    def test_sqrt_lr_scaling(self):
        assert scale_lr_sqrt(1e-3, 4) == pytest.approx(2e-3)
        assert scale_lr_sqrt(1e-3, 1) == pytest.approx(1e-3)

    def test_linear_warmup_scaling_with_cap(self):
        assert scale_warmup_linear(0.001, 8) == pytest.approx(0.008)
        assert scale_warmup_linear(0.1, 32) == pytest.approx(0.5)  # capped

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            scale_lr_sqrt(1e-3, 0)
        with pytest.raises(ValueError):
            scale_warmup_linear(0.1, -1)

    def test_config_scaling_helper(self):
        from repro.training import TrainingConfig, scale_config_for_world_size

        base = TrainingConfig(batch_size=8, max_lr=1e-3, warmup_fraction=0.001)
        scaled = scale_config_for_world_size(base, 16)
        assert scaled.batch_size == 128
        assert scaled.max_lr == pytest.approx(4e-3)
        assert scaled.warmup_fraction == pytest.approx(0.016)
        assert scale_config_for_world_size(base, 1) is base
