"""GPU specs, FLOP models and the Section 4.3 scaling predictions."""

import pytest

from repro.distributed import INTERCONNECTS
from repro.perfmodel import (
    GPU_SPECS,
    MFPCostModel,
    concat_first_layer_flops,
    inference_time,
    model_inference_flops,
    sdnet_first_layer_flops,
    strong_scaling_curve,
    weak_scaling_curve,
)


class TestGPUSpecs:
    def test_table2_contents(self):
        assert set(GPU_SPECS) == {"V100", "A30", "A100"}
        assert GPU_SPECS["V100"].memory_gb == 16.0
        assert GPU_SPECS["A100"].peak_fp32_tflops == pytest.approx(19.5)
        assert GPU_SPECS["A30"].gpus_per_node == 4

    def test_peak_flops_conversion(self):
        assert GPU_SPECS["V100"].peak_flops == pytest.approx(14e12)

    def test_inference_time_scales_with_peak(self):
        flops = 1e9
        assert inference_time(flops, GPU_SPECS["A100"]) < inference_time(flops, GPU_SPECS["A30"])
        with pytest.raises(ValueError):
            inference_time(flops, GPU_SPECS["A100"], efficiency=0.0)


class TestFlopModels:
    def test_split_layer_is_cheaper_and_gap_grows_with_batch(self):
        small_gap = concat_first_layer_flops(128, 64, 100) - sdnet_first_layer_flops(128, 64, 100)
        large_gap = concat_first_layer_flops(128, 64, 10_000) - sdnet_first_layer_flops(128, 64, 10_000)
        assert small_gap > 0 and large_gap > small_gap

    def test_total_model_flops(self):
        split = model_inference_flops(128, 64, 4, 1000, architecture="split")
        concat = model_inference_flops(128, 64, 4, 1000, architecture="concat")
        assert split < concat
        with pytest.raises(ValueError):
            model_inference_flops(128, 64, 4, 1000, architecture="fourier")


class TestScalingModel:
    @pytest.fixture()
    def cost_model(self):
        return MFPCostModel.from_gpu(
            GPU_SPECS["A30"],
            INTERCONNECTS["infiniband-100g"],
            boundary_size=128,
            hidden=64,
            trunk_layers=4,
            subdomain_resolution=32,
        )

    def test_strong_scaling_speedup_and_comm_fraction(self, cost_model):
        iterations = {1: 3200, 2: 3250, 4: 3250, 8: 3300, 16: 3400, 32: 3500}
        curve = strong_scaling_curve(cost_model, 2048, sorted(iterations), iterations)
        totals = {p.world_size: p.total for p in curve}
        fractions = [p.communication_fraction for p in curve]
        # Total time decreases with processor count but sub-linearly.
        assert totals[32] < totals[1]
        speedup = totals[1] / totals[32]
        assert 4 < speedup < 32
        # The communication fraction grows monotonically with P (Figure 9a).
        assert all(b >= a for a, b in zip(fractions, fractions[1:]))

    def test_computation_scales_inversely_with_p(self, cost_model):
        t1 = cost_model.computation_time(2048, 1, 100)
        t4 = cost_model.computation_time(2048, 4, 100)
        assert t1 / t4 == pytest.approx(4.0)

    def test_communication_bandwidth_term_decreases_with_sqrt_p(self, cost_model):
        c4 = cost_model.communication_time(2048, 4, 100)
        c16 = cost_model.communication_time(2048, 16, 100)
        assert c16 < c4
        assert cost_model.communication_time(2048, 1, 100) == 0.0

    def test_weak_scaling_communication_grows_then_plateaus(self, cost_model):
        curve = weak_scaling_curve(cost_model, (512, 1024), [1, 2, 4, 8, 16, 32], iterations=2000)
        comm = [p.sendrecv for p in curve]
        # no communication on one rank, then growth that flattens out
        assert comm[0] == 0.0
        assert comm[1] > 0.0
        late_growth = comm[-1] / comm[2]
        early_growth = comm[2] / comm[1]
        assert late_growth < early_growth * 2

    def test_subdomains_per_processor_formula(self, cost_model):
        assert cost_model.subdomains_per_processor(2048, 1) == pytest.approx(
            (2 * 2048) ** 2 / 32 ** 2
        )
