"""SDNet architecture, baseline solver and boundary embeddings."""

import numpy as np
import pytest

from repro.autodiff import Tensor, no_grad
from repro.models import (
    ConcatSolver,
    ConvBoundaryEmbedding,
    IdentityBoundaryEmbedding,
    SDNet,
    normalize_inputs,
)


class TestNormalizeInputs:
    def test_batched_passthrough(self):
        g, x, batched = normalize_inputs(np.zeros((3, 8)), np.zeros((3, 5, 2)))
        assert batched and g.shape == (3, 8) and x.shape == (3, 5, 2)

    def test_single_instance_promotion(self):
        g, x, batched = normalize_inputs(np.zeros(8), np.zeros((5, 2)))
        assert not batched and g.shape == (1, 8) and x.shape == (1, 5, 2)

    def test_shared_points_broadcast_over_boundaries(self):
        g, x, batched = normalize_inputs(np.zeros((4, 8)), np.zeros((5, 2)))
        assert batched and x.shape == (4, 5, 2)

    def test_batch_mismatch_raises(self):
        with pytest.raises(ValueError):
            normalize_inputs(np.zeros((3, 8)), np.zeros((2, 5, 2)))


class TestBoundaryEmbeddings:
    def test_identity_embedding_shape(self):
        emb = IdentityBoundaryEmbedding(16)
        out = emb(Tensor(np.random.default_rng(0).normal(size=(3, 16))))
        assert out.shape == (3, 16)
        assert emb.output_size == 16

    def test_conv_embedding_shape(self):
        emb = ConvBoundaryEmbedding(20, channels=(3, 2), kernel_size=5)
        out = emb(Tensor(np.random.default_rng(0).normal(size=(4, 20))))
        assert out.shape == (4, emb.output_size)
        assert emb.output_size == 20 * 2

    def test_conv_embedding_rejects_even_kernel(self):
        with pytest.raises(ValueError):
            ConvBoundaryEmbedding(20, kernel_size=4)

    def test_conv_embedding_rejects_wrong_boundary_size(self):
        emb = ConvBoundaryEmbedding(20)
        with pytest.raises(ValueError):
            emb(Tensor(np.zeros((2, 24))))

    def test_embedding_is_translation_covariant_on_the_loop(self):
        """Circular convolution: rotating the boundary rotates the features."""

        emb = ConvBoundaryEmbedding(16, channels=(2,), kernel_size=3,
                                    rng=np.random.default_rng(1))
        g = np.random.default_rng(2).normal(size=16)
        out = emb(Tensor(g[None, :])).data.reshape(2, 16)
        out_rolled = emb(Tensor(np.roll(g, 4)[None, :])).data.reshape(2, 16)
        assert np.allclose(np.roll(out, 4, axis=1), out_rolled, atol=1e-12)


class TestSDNet:
    def test_forward_shapes(self, small_sdnet, rng):
        g = Tensor(rng.normal(size=(3, small_sdnet.boundary_size)))
        x = Tensor(rng.uniform(size=(3, 5, 2)))
        assert small_sdnet(g, x).shape == (3, 5)
        assert small_sdnet(g.data[0], x.data[0]).shape == (5,)

    def test_unbatched_matches_batched(self, small_sdnet, rng):
        g = rng.normal(size=(2, small_sdnet.boundary_size))
        x = rng.uniform(size=(2, 4, 2))
        batched = small_sdnet(Tensor(g), Tensor(x)).data
        single = small_sdnet(Tensor(g[1]), Tensor(x[1])).data
        assert np.allclose(batched[1], single)

    def test_predict_returns_numpy_without_graph(self, small_sdnet, rng):
        g = rng.normal(size=(2, small_sdnet.boundary_size))
        x = rng.uniform(size=(2, 4, 2))
        out = small_sdnet.predict(g, x)
        assert isinstance(out, np.ndarray)
        assert out.shape == (2, 4)

    def test_embedding_reuse_gives_same_answer(self, small_sdnet, rng):
        g = Tensor(rng.normal(size=(2, small_sdnet.boundary_size)))
        x = Tensor(rng.uniform(size=(2, 4, 2)))
        with no_grad():
            direct = small_sdnet(g, x).data
            embedded = small_sdnet.forward_from_embedding(small_sdnet.embed_boundary(g), x).data
        assert np.allclose(direct, embedded)

    def test_identical_seeds_give_identical_models(self, small_grid):
        a = SDNet(boundary_size=small_grid.boundary_size, hidden_size=8, trunk_layers=1, rng=3)
        b = SDNet(boundary_size=small_grid.boundary_size, hidden_size=8, trunk_layers=1, rng=3)
        for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
            assert np.array_equal(pa.data, pb.data)

    def test_no_embedding_variant(self, small_grid):
        net = SDNet(
            boundary_size=small_grid.boundary_size,
            hidden_size=8,
            trunk_layers=1,
            embedding_channels=(),
            rng=0,
        )
        g = np.random.default_rng(0).normal(size=(2, small_grid.boundary_size))
        x = np.random.default_rng(1).uniform(size=(2, 3, 2))
        assert net(Tensor(g), Tensor(x)).shape == (2, 3)

    def test_laplacian_method_validation(self, small_sdnet, rng):
        g = rng.normal(size=(1, small_sdnet.boundary_size))
        x = rng.uniform(size=(1, 2, 2))
        with pytest.raises(ValueError):
            small_sdnet.laplacian(g, x, method="magic")

    def test_config_roundtrip(self, small_sdnet):
        cfg = small_sdnet.config()
        assert cfg["boundary_size"] == small_sdnet.boundary_size
        assert cfg["activation"] == "gelu"


class TestConcatBaseline:
    def test_forward_shape_and_unbatched(self, small_concat_solver, rng):
        g = rng.normal(size=(2, small_concat_solver.boundary_size))
        x = rng.uniform(size=(2, 6, 2))
        out = small_concat_solver(Tensor(g), Tensor(x))
        assert out.shape == (2, 6)
        assert small_concat_solver(Tensor(g[0]), Tensor(x[0])).shape == (6,)

    def test_laplacian_available_via_autograd(self, small_concat_solver, rng):
        g = rng.normal(size=(1, small_concat_solver.boundary_size))
        x = rng.uniform(size=(1, 3, 2))
        lap = small_concat_solver.laplacian(Tensor(g), Tensor(x))
        assert lap.shape == (1, 3)

    def test_input_words_formula(self, small_concat_solver):
        q = 100
        assert small_concat_solver.input_words(q) == q * (small_concat_solver.boundary_size + 2)
