"""The split-layer optimization (eq. 8) must equal the input-concat form (eq. 6)."""

import numpy as np
import pytest

from repro.autodiff import Tensor, grad, ops
from repro.models import SplitLayer
from repro.nn import GELU


class TestSplitLayerEquivalence:
    def test_matches_concat_formulation_exactly(self):
        rng = np.random.default_rng(0)
        layer = SplitLayer(boundary_features=12, coord_features=2, out_features=8, rng=rng)
        g = rng.normal(size=(3, 12))
        x = rng.uniform(size=(3, 7, 2))

        out = layer(Tensor(g), Tensor(x)).data

        # Input-concat reference: replicate g for every point and multiply by [W1 | W2].
        W = layer.as_concat_weight()                      # (8, 14)
        bias = layer.boundary_proj.bias.data
        act = GELU()
        concat = np.concatenate(
            [np.broadcast_to(g[:, None, :], (3, 7, 12)), x], axis=2
        )
        expected = act(Tensor(concat @ W.T + bias)).data
        assert np.allclose(out, expected, atol=1e-12)

    def test_boundary_projection_computed_once_is_consistent_across_q(self):
        rng = np.random.default_rng(1)
        layer = SplitLayer(10, 2, 6, rng=rng)
        g = Tensor(rng.normal(size=(2, 10)))
        x_small = Tensor(rng.uniform(size=(2, 3, 2)))
        x_large = Tensor(np.concatenate([x_small.data, rng.uniform(size=(2, 5, 2))], axis=1))
        out_small = layer(g, x_small).data
        out_large = layer(g, x_large).data
        assert np.allclose(out_large[:, :3, :], out_small)

    def test_input_shape_validation(self):
        layer = SplitLayer(10, 2, 6)
        with pytest.raises(ValueError):
            layer(Tensor(np.zeros(10)), Tensor(np.zeros((1, 3, 2))))
        with pytest.raises(ValueError):
            layer(Tensor(np.zeros((1, 10))), Tensor(np.zeros((3, 2))))

    def test_gradients_flow_through_both_blocks(self):
        rng = np.random.default_rng(2)
        layer = SplitLayer(6, 2, 4, rng=rng)
        g = Tensor(rng.normal(size=(2, 6)))
        x = Tensor(rng.uniform(size=(2, 4, 2)))
        loss = ops.sum(layer(g, x) ** 2.0)
        grads = grad(loss, [layer.boundary_proj.weight, layer.coord_proj.weight])
        assert all(np.any(gr.data != 0) for gr in grads)

    def test_taylor_forward_value_matches_forward(self):
        from repro.autodiff.taylor import taylor_seed

        rng = np.random.default_rng(3)
        layer = SplitLayer(6, 2, 4, rng=rng)
        g = Tensor(rng.normal(size=(2, 6)))
        x = rng.uniform(size=(2, 4, 2))
        triple = taylor_seed(Tensor(x), np.array([1.0, 0.0]))
        out = layer.taylor_forward(g, triple)
        assert np.allclose(out.value.data, layer(g, Tensor(x)).data, atol=1e-12)


class TestCostAnalysis:
    """The memory analysis of Section 3.2: split removes the replicated boundary."""

    def test_input_word_counts(self):
        # Input-concat: q (4N + 2) words.  Split: 4N + 2q words.
        boundary = 4 * 32
        for q in (10, 1000, 50_000):
            concat_words = q * (boundary + 2)
            split_words = boundary + 2 * q
            assert split_words < concat_words
        # The ratio grows with N for fixed q.
        assert (1000 * (4 * 256 + 2)) / (4 * 256 + 2 * 1000) > (
            1000 * (4 * 32 + 2)
        ) / (4 * 32 + 2 * 1000)

    def test_flop_model_ordering(self):
        from repro.perfmodel import concat_first_layer_flops, sdnet_first_layer_flops

        assert sdnet_first_layer_flops(128, 64, 10_000) < concat_first_layer_flops(
            128, 64, 10_000
        )
