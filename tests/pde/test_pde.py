"""BVP abstractions, collocation sampling and physics-informed losses."""

import numpy as np
import pytest

from repro.autodiff import Tensor, grad
from repro.pde import (
    Domain,
    HARMONIC_FUNCTIONS,
    PinnLoss,
    data_loss,
    grid_points,
    harmonic_bvp,
    laplace_bvp,
    laplace_residual_loss,
    mse_loss,
    sample_collocation,
    sine_boundary_bvp,
)


class TestDomain:
    def test_area_and_contains(self):
        domain = Domain(extent=(2.0, 1.0), origin=(1.0, 0.0))
        assert domain.area == pytest.approx(2.0)
        inside = np.array([[1.5, 0.5], [3.0, 1.0]])
        outside = np.array([[0.5, 0.5], [1.5, 1.5]])
        assert np.all(domain.contains(inside))
        assert not np.any(domain.contains(outside))

    def test_grid_construction(self):
        domain = Domain(extent=(1.0, 2.0))
        grid = domain.grid(5, 9)
        assert grid.shape == (9, 5)
        assert grid.extent == (1.0, 2.0)


class TestBVP:
    def test_harmonic_bvp_reference_is_exact_solution(self):
        bvp = harmonic_bvp("saddle")
        grid = bvp.domain.grid(17)
        assert np.allclose(bvp.reference_solution(grid), grid.field_from_function(HARMONIC_FUNCTIONS["saddle"]))

    def test_unknown_harmonic_name(self):
        with pytest.raises(ValueError):
            harmonic_bvp("vortex")

    def test_boundary_loop_requires_function(self):
        bvp = laplace_bvp(boundary_function=None)
        with pytest.raises(ValueError):
            bvp.boundary_loop(Domain().grid(9))

    def test_numerical_reference_for_gp_style_boundary(self):
        bvp = sine_boundary_bvp()
        grid = bvp.domain.grid(17)
        reference = bvp.reference_solution(grid, method="direct")
        loop = bvp.boundary_loop(grid)
        # Boundary values of the reference match the imposed condition.
        assert np.allclose(grid.extract_boundary(reference), loop)

    def test_exact_field_requires_exact_solution(self):
        bvp = sine_boundary_bvp()
        with pytest.raises(ValueError):
            bvp.exact_field(bvp.domain.grid(9))


class TestCollocation:
    def test_uniform_sampling_stays_inside(self):
        domain = Domain(extent=(0.5, 0.5), origin=(1.0, 2.0))
        pts = sample_collocation(domain, 200, seed=0, strategy="uniform")
        assert pts.shape == (200, 2)
        assert np.all(domain.contains(pts))

    def test_sobol_sampling_stays_inside_and_is_low_discrepancy(self):
        domain = Domain(extent=(1.0, 1.0))
        pts = sample_collocation(domain, 256, seed=1, strategy="sobol")
        assert np.all(domain.contains(pts))
        # Low-discrepancy: each quadrant receives roughly a quarter of points.
        quadrant = np.sum((pts[:, 0] < 0.5) & (pts[:, 1] < 0.5))
        assert 48 <= quadrant <= 80

    def test_grid_points_count(self):
        assert grid_points(Domain(), 5, 7).shape == (35, 2)

    def test_reproducibility_with_seed(self):
        domain = Domain()
        a = sample_collocation(domain, 32, seed=5)
        b = sample_collocation(domain, 32, seed=5)
        assert np.array_equal(a, b)

    def test_invalid_strategy(self):
        with pytest.raises(ValueError):
            sample_collocation(Domain(), 10, strategy="halton")


class TestLosses:
    def test_mse_loss_value(self):
        pred = Tensor(np.array([1.0, 2.0, 3.0]))
        assert mse_loss(pred, np.array([1.0, 1.0, 1.0])).item() == pytest.approx(5.0 / 3.0)

    def test_data_loss_is_zero_for_perfect_model(self, small_sdnet, rng):
        g = rng.normal(size=(2, small_sdnet.boundary_size))
        x = rng.uniform(size=(2, 4, 2))
        u = small_sdnet.predict(g, x)
        assert data_loss(small_sdnet, Tensor(g), Tensor(x), u).item() == pytest.approx(0.0)

    def test_residual_loss_nonnegative_and_differentiable(self, small_sdnet, rng):
        g = Tensor(rng.normal(size=(2, small_sdnet.boundary_size)))
        x = Tensor(rng.uniform(size=(2, 4, 2)) * 0.5)
        loss = laplace_residual_loss(small_sdnet, g, x)
        assert loss.item() >= 0.0
        grads = grad(loss, small_sdnet.parameters())
        assert any(np.any(gr.data != 0) for gr in grads)

    def test_residual_loss_methods_agree(self, small_sdnet, rng):
        g = Tensor(rng.normal(size=(1, small_sdnet.boundary_size)))
        x = Tensor(rng.uniform(size=(1, 5, 2)) * 0.5)
        taylor = laplace_residual_loss(small_sdnet, g, x, method="taylor").item()
        autograd = laplace_residual_loss(small_sdnet, g, x, method="autograd").item()
        assert taylor == pytest.approx(autograd, rel=1e-10)

    def test_residual_loss_rejects_unknown_method(self, small_sdnet, rng):
        """Typos must raise, not silently fall back to the default Laplacian."""

        g = Tensor(rng.normal(size=(1, small_sdnet.boundary_size)))
        x = Tensor(rng.uniform(size=(1, 5, 2)) * 0.5)
        with pytest.raises(ValueError, match="taylor.*autograd"):
            laplace_residual_loss(small_sdnet, g, x, method="taylo")
        with pytest.raises(ValueError, match="accepted methods"):
            laplace_residual_loss(small_sdnet, g, x, method="forward")

    def test_pinn_loss_composition(self, small_sdnet, rng):
        g = Tensor(rng.normal(size=(2, small_sdnet.boundary_size)))
        x = Tensor(rng.uniform(size=(2, 4, 2)))
        u = Tensor(rng.normal(size=(2, 4)))
        values = PinnLoss(pde_weight=0.5)(small_sdnet, g, x, u, x)
        assert values.total.item() == pytest.approx(
            values.data.item() + 0.5 * values.pde.item()
        )
        floats = values.to_floats()
        assert set(floats) == {"total", "data", "pde"}

    def test_pinn_loss_without_pde_term(self, small_sdnet, rng):
        g = Tensor(rng.normal(size=(1, small_sdnet.boundary_size)))
        x = Tensor(rng.uniform(size=(1, 4, 2)))
        u = Tensor(rng.normal(size=(1, 4)))
        values = PinnLoss(use_pde_loss=False)(small_sdnet, g, x, u, x)
        assert values.pde.item() == 0.0
        assert values.total.item() == pytest.approx(values.data.item())
