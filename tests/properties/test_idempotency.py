"""Property-based idempotency of the serving request store (hypothesis).

Random interleavings of duplicate submissions — with drains interleaved, so
duplicates hit every store state (attached to an in-flight claim, replayed
from a settled entry) — must perform exactly one solve per canonical BVP and
resolve every future with bitwise-identical solution arrays.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.mosaic import MosaicGeometry
from repro.serving import BatchPolicy, Server, SolveRequest

COMMON_SETTINGS = settings(max_examples=15, deadline=None)

GEOMETRY = MosaicGeometry(subdomain_points=9, subdomain_extent=0.5,
                          steps_x=4, steps_y=4)
_GRID = GEOMETRY.global_grid()
#: three distinct canonical BVPs the interleavings draw duplicates from
LOOPS = [
    _GRID.boundary_from_function(fn)
    for fn in (
        lambda x, y: x + 2.0 * y,
        lambda x, y: x * x - y * y,
        lambda x, y: np.exp(x) * np.sin(y),
    )
]

# An op is either "submit a (possibly duplicate) request for BVP i" or a
# drain that settles everything queued so far.
ops_strategy = st.lists(
    st.one_of(st.integers(min_value=0, max_value=len(LOOPS) - 1), st.just("drain")),
    min_size=1,
    max_size=12,
)


class TestIdempotentSubmission:
    @COMMON_SETTINGS
    @given(ops=ops_strategy)
    def test_duplicates_solve_exactly_once(self, ops):
        server = Server(
            policy=BatchPolicy(max_batch_size=64, max_wait_seconds=1e9),
            cache=None,  # the store alone must provide idempotency
        )
        futures: dict[int, list] = {}
        for op in ops:
            if op == "drain":
                server.drain()
                continue
            request = SolveRequest.create(GEOMETRY, LOOPS[op], max_iterations=25)
            futures.setdefault(op, []).append(server.submit_async(request))
        server.drain()

        distinct = {op for op in ops if op != "drain"}
        # Exactly one claim and one solved row per canonical BVP, no matter
        # how many duplicates were interleaved or where the drains fell.
        assert server.store.stats()["claims"] == len(distinct)
        assert server.stats.solved_requests == len(distinct)
        assert server.stats.requests == sum(1 for op in ops if op != "drain")

        for op, bvp_futures in futures.items():
            canonical = None
            for future in bvp_futures:
                assert future.done()
                result = future.result(timeout=0)
                payload = result.solution.tobytes()
                if canonical is None:
                    canonical = payload
                # Every duplicate, whether attached in flight or replayed
                # after settling, gets bitwise-identical arrays.
                assert payload == canonical

    @COMMON_SETTINGS
    @given(ops=ops_strategy)
    def test_store_accounting_balances(self, ops):
        server = Server(
            policy=BatchPolicy(max_batch_size=64, max_wait_seconds=1e9),
            cache=None,
        )
        for op in ops:
            if op == "drain":
                server.drain()
                continue
            server.submit_async(
                SolveRequest.create(GEOMETRY, LOOPS[op], max_iterations=25)
            )
        server.drain()
        stats = server.store.stats()
        submissions = sum(1 for op in ops if op != "drain")
        # Every submission is exactly one of: an owning claim, an attached
        # in-flight duplicate, or a settled replay.
        assert stats["claims"] + stats["attached"] + stats["replays"] == submissions
        assert stats["failures"] == 0 and stats["duplicate_deliveries"] == 0
        assert server.stats.dedup_hits == stats["attached"]
        assert server.stats.store_hits == stats["replays"]
