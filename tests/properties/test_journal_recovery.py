"""Property: journal recovery is exact at *every* possible crash point.

Hypothesis drives the request journal through arbitrary claim/complete/fail
histories, then simulates a crash at every record boundary and at torn
offsets inside every record.  Whatever the crash point:

* recovery replays exactly the records fully on disk before the crash —
  never a partial record, never a reordering;
* completed keys come back **bitwise identical** to what was journaled;
* the accounting balances exactly-once: every key seen in the surviving
  prefix is counted exactly once as completed, failed, or orphaned
  (reclaimable), so no request is lost and none can resolve twice.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serving import RequestJournal, RequestStore
from repro.serving.cache import CachedSolution
from repro.serving.journal import MAGIC

COMMON_SETTINGS = settings(max_examples=15, deadline=None)

#: an operation is (kind, key-id); a handful of keys guarantees overlap, so
#: histories exercise re-claims after failures and claim/complete interleaving
OPS = st.lists(
    st.tuples(st.sampled_from(["claim", "complete", "fail"]), st.integers(0, 3)),
    min_size=1,
    max_size=12,
)


def _solution(seed: int) -> CachedSolution:
    rng = np.random.default_rng(seed)
    return CachedSolution(
        solution=rng.normal(size=(4, 4)),
        iterations=int(rng.integers(1, 30)),
        converged=bool(rng.integers(2)),
        deltas=[0.1],
    )


def _write_history(path, ops):
    """Append the history; returns per-record end offsets and payloads."""

    journal = RequestJournal(path, fsync_every=1)
    boundaries = [path.stat().st_size]  # == len(MAGIC): the empty journal
    payloads = {}
    for index, (kind, key_id) in enumerate(ops):
        key = ("bvp", key_id)
        if kind == "claim":
            journal.append_claim(key)
        elif kind == "complete":
            payloads[index] = _solution(seed=1000 + index)
            journal.append_complete(key, payloads[index])
        else:
            journal.append_fail(key, f"injected failure #{index}")
        boundaries.append(path.stat().st_size)
    journal.close()
    return boundaries, payloads


def _expected_prefix_state(ops, payloads, prefix_len):
    """Final per-key state after replaying the first ``prefix_len`` records."""

    final = {}
    for index, (kind, key_id) in enumerate(ops[:prefix_len]):
        final[("bvp", key_id)] = (kind, payloads.get(index))
    return final


def _crash_points(boundaries):
    """Every record boundary plus torn offsets inside every record."""

    points = []
    for start, end in zip(boundaries, boundaries[1:]):
        points.append((start, "boundary"))
        points.append((start + 1, "torn"))          # tear inside the header
        points.append(((start + end) // 2, "torn"))  # tear mid-record
    points.append((boundaries[-1], "boundary"))
    return points


@COMMON_SETTINGS
@given(ops=OPS)
def test_recovery_is_bitwise_exact_at_every_crash_point(ops, tmp_path_factory):
    base = tmp_path_factory.mktemp("journal")
    path = base / "requests.wal"
    boundaries, payloads = _write_history(path, ops)
    raw = path.read_bytes()
    assert raw.startswith(MAGIC)

    for offset, flavour in _crash_points(boundaries):
        crashed = base / "crashed.wal"
        crashed.write_bytes(raw[:offset])
        prefix_len = sum(1 for end in boundaries[1:] if end <= offset)

        journal = RequestJournal(crashed)
        store = RequestStore()
        report = store.recover(journal)

        # The torn tail (if any) was truncated, never replayed.
        assert report.records == prefix_len
        assert report.truncated_bytes == offset - boundaries[prefix_len]
        if flavour == "boundary":
            assert report.truncated_bytes == 0

        expected = _expected_prefix_state(ops, payloads, prefix_len)
        completed = {k for k, (kind, _) in expected.items() if kind == "complete"}
        failed = {k for k, (kind, _) in expected.items() if kind == "fail"}
        orphaned = {k for k, (kind, _) in expected.items() if kind == "claim"}

        # Exactly-once accounting: every key in the prefix counted once.
        assert report.completed == len(completed)
        assert report.failed == len(failed)
        assert set(report.orphaned) == orphaned
        assert report.completed + report.failed + len(report.orphaned) == len(
            expected
        )

        # Completed keys replay bitwise; everything else is reclaimable.
        for key in completed:
            entry = store.peek(key)
            assert entry is not None
            assert (
                entry.solution.tobytes()
                == expected[key][1].solution.tobytes()
            )
        for key in failed | orphaned:
            assert store.peek(key) is None
        journal.close()


@COMMON_SETTINGS
@given(ops=OPS)
def test_recovered_journal_accepts_further_appends(ops, tmp_path_factory):
    """After any boundary crash, the truncated journal keeps journaling."""

    base = tmp_path_factory.mktemp("journal")
    path = base / "requests.wal"
    boundaries, _ = _write_history(path, ops)
    raw = path.read_bytes()

    crashed = base / "crashed.wal"
    crashed.write_bytes(raw[: (boundaries[0] + boundaries[-1]) // 2])
    journal = RequestJournal(crashed)
    before = len(journal.replay())
    journal.append_claim(("bvp", 99))
    journal.sync()
    records = journal.replay()
    assert len(records) == before + 1
    assert records[-1][:2] == (RequestJournal.CLAIM, ("bvp", 99))
    journal.close()
