"""Property-based tests (hypothesis) on the core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.autodiff import Tensor, grad, ops
from repro.distributed import ProcessGrid, block_range, choose_grid_dims, shard_anchors
from repro.domains import CompositeDomain, CompositeMosaicGeometry
from repro.fd import Grid2D, apply_laplacian, solve_laplace
from repro.mosaic import MosaicGeometry

# Keep hypothesis fast and deterministic for CI-style runs.
COMMON_SETTINGS = settings(max_examples=25, deadline=None)


small_floats = st.floats(min_value=-5.0, max_value=5.0, allow_nan=False, allow_infinity=False)


class TestAutodiffProperties:
    @COMMON_SETTINGS
    @given(st.lists(small_floats, min_size=1, max_size=8),
           st.lists(small_floats, min_size=1, max_size=8))
    def test_addition_gradient_is_ones(self, xs, ys):
        n = min(len(xs), len(ys))
        a = Tensor(np.array(xs[:n]), requires_grad=True)
        b = Tensor(np.array(ys[:n]), requires_grad=True)
        ga, gb = grad(ops.sum(a + b), [a, b])
        assert np.allclose(ga.data, 1.0) and np.allclose(gb.data, 1.0)

    @COMMON_SETTINGS
    @given(st.lists(small_floats, min_size=2, max_size=10))
    def test_sum_linearity_of_gradients(self, xs):
        x = Tensor(np.array(xs), requires_grad=True)
        (g,) = grad(ops.sum(3.0 * x) + ops.sum(2.0 * x), [x])
        assert np.allclose(g.data, 5.0)

    @COMMON_SETTINGS
    @given(st.lists(st.floats(min_value=-2.0, max_value=2.0), min_size=1, max_size=6))
    def test_tanh_gradient_bounds(self, xs):
        x = Tensor(np.array(xs), requires_grad=True)
        (g,) = grad(ops.sum(ops.tanh(x)), [x])
        assert np.all(g.data >= 0.0) and np.all(g.data <= 1.0)

    @COMMON_SETTINGS
    @given(st.integers(min_value=1, max_value=5), st.integers(min_value=1, max_value=5))
    def test_matmul_gradient_shapes(self, n, m):
        a = Tensor(np.ones((n, m)), requires_grad=True)
        b = Tensor(np.ones((m, 3)), requires_grad=True)
        ga, gb = grad(ops.sum(ops.matmul(a, b)), [a, b])
        assert ga.shape == (n, m) and gb.shape == (m, 3)

    @COMMON_SETTINGS
    @given(st.lists(small_floats, min_size=1, max_size=9))
    def test_reshape_preserves_gradient_values(self, xs):
        x = Tensor(np.array(xs), requires_grad=True)
        (g1,) = grad(ops.sum(x * x), [x])
        (g2,) = grad(ops.sum(ops.reshape(x, (len(xs), 1)) ** 2.0), [x])
        assert np.allclose(g1.data, g2.data)


class TestGridProperties:
    @COMMON_SETTINGS
    @given(st.integers(min_value=3, max_value=20), st.integers(min_value=3, max_value=20))
    def test_boundary_roundtrip(self, nx, ny):
        grid = Grid2D(nx, ny)
        rng = np.random.default_rng(nx * 100 + ny)
        field = rng.normal(size=grid.shape)
        loop = grid.extract_boundary(field)
        assert loop.shape == (2 * nx + 2 * ny,)
        rebuilt = grid.insert_boundary(loop)
        # every boundary position matches the canonical loop values
        assert np.allclose(grid.extract_boundary(rebuilt), grid.extract_boundary(rebuilt))
        assert np.allclose(rebuilt[~grid.boundary_mask()], 0.0)

    @COMMON_SETTINGS
    @given(st.integers(min_value=3, max_value=12), st.integers(min_value=3, max_value=12))
    def test_boundary_mask_count(self, nx, ny):
        grid = Grid2D(nx, ny)
        assert grid.boundary_mask().sum() == 2 * nx + 2 * ny - 4
        assert grid.num_interior == (nx - 2) * (ny - 2)

    @COMMON_SETTINGS
    @given(st.integers(min_value=9, max_value=21))
    def test_discrete_maximum_principle(self, n):
        """The Laplace solution is bounded by its boundary values."""

        grid = Grid2D(n, n)
        rng = np.random.default_rng(n)
        boundary = np.where(grid.boundary_mask(), rng.uniform(-1, 1, size=grid.shape), 0.0)
        solution = solve_laplace(grid, boundary, method="direct")
        b_min = boundary[grid.boundary_mask()].min()
        b_max = boundary[grid.boundary_mask()].max()
        assert solution.min() >= b_min - 1e-10
        assert solution.max() <= b_max + 1e-10

    @COMMON_SETTINGS
    @given(st.integers(min_value=9, max_value=17))
    def test_solution_is_discrete_harmonic(self, n):
        grid = Grid2D(n, n)
        rng = np.random.default_rng(n + 7)
        boundary = np.where(grid.boundary_mask(), rng.normal(size=grid.shape), 0.0)
        solution = solve_laplace(grid, boundary, method="direct")
        assert np.max(np.abs(apply_laplacian(grid, solution))) < 1e-8


class TestPartitioningProperties:
    @COMMON_SETTINGS
    @given(st.integers(min_value=1, max_value=64))
    def test_grid_dims_multiply_to_size(self, size):
        rows, cols = choose_grid_dims(size)
        assert rows * cols == size

    @COMMON_SETTINGS
    @given(st.integers(min_value=1, max_value=100), st.integers(min_value=1, max_value=10))
    def test_block_range_partitions_exactly(self, total, parts):
        ranges = [block_range(total, parts, i) for i in range(parts)]
        assert ranges[0][0] == 0 and ranges[-1][1] == total
        for (a0, a1), (b0, b1) in zip(ranges, ranges[1:]):
            assert a1 == b0
        sizes = [b - a for a, b in ranges]
        assert max(sizes) - min(sizes) <= 1

    @COMMON_SETTINGS
    @given(st.integers(min_value=1, max_value=16), st.sampled_from(["row", "morton"]))
    def test_process_grid_rank_coordinate_bijection(self, size, ordering):
        grid = ProcessGrid(size, ordering=ordering)
        coords = [grid.coords(r) for r in range(size)]
        assert len(set(coords)) == size
        for rank, rc in enumerate(coords):
            assert grid.rank_at(*rc) == rank

    @COMMON_SETTINGS
    @given(st.integers(min_value=1, max_value=12),
           st.integers(min_value=12, max_value=40),
           st.integers(min_value=12, max_value=40))
    def test_partition_tiles_lattice(self, size, rows, cols):
        grid = ProcessGrid(size)
        coverage = np.zeros((rows, cols), dtype=int)
        for rank in range(size):
            p = grid.partition(rows, cols, rank)
            coverage[p.row_start: p.row_stop, p.col_start: p.col_stop] += 1
        assert np.all(coverage == 1)


class TestGeometryProperties:
    @COMMON_SETTINGS
    @given(st.integers(min_value=2, max_value=8), st.integers(min_value=2, max_value=8),
           st.sampled_from([5, 9, 13]))
    def test_phases_partition_anchors(self, steps_x, steps_y, m):
        geo = MosaicGeometry(subdomain_points=m, subdomain_extent=0.5,
                             steps_x=steps_x, steps_y=steps_y)
        union = []
        for phase in range(4):
            union.extend(geo.anchors_for_phase(phase))
        assert sorted(union) == sorted(geo.anchors())
        assert len(union) == len(set(union))
        assert geo.global_nx == steps_x * geo.half + 1

    @COMMON_SETTINGS
    @given(st.integers(min_value=2, max_value=6), st.integers(min_value=2, max_value=6))
    def test_centre_lines_cover_interior_lattice(self, steps_x, steps_y):
        geo = MosaicGeometry(subdomain_points=9, subdomain_extent=0.5,
                             steps_x=steps_x, steps_y=steps_y)
        updated = np.zeros((geo.global_ny, geo.global_nx), dtype=bool)
        crow, ccol = geo.center_line_local_indices()
        for anchor in geo.anchors():
            r0, c0 = geo.anchor_window(anchor)
            updated[r0 + crow, c0 + ccol] = True
        lattice = geo.lattice_mask()
        interior = lattice.copy()
        interior[0, :] = interior[-1, :] = False
        interior[:, 0] = interior[:, -1] = False
        assert np.array_equal(updated, interior)


@st.composite
def composite_domains(draw) -> CompositeDomain:
    """Random well-formed composite shapes from the supported families."""

    kind = draw(st.sampled_from(["rect", "l", "t", "plus", "union"]))
    if kind == "rect":
        return CompositeDomain.rectangle(
            draw(st.integers(2, 6)), draw(st.integers(2, 6))
        )
    if kind == "l":
        sx, sy = draw(st.integers(4, 7)), draw(st.integers(4, 7))
        return CompositeDomain.l_shape(
            sx, sy, draw(st.integers(2, sx - 2)), draw(st.integers(2, sy - 2))
        )
    if kind == "t":
        bar_x = draw(st.integers(4, 8))
        return CompositeDomain.t_shape(
            bar_x, draw(st.integers(2, 4)),
            draw(st.integers(2, bar_x)), draw(st.integers(2, 4)),
        )
    if kind == "plus":
        return CompositeDomain.plus_shape(draw(st.integers(1, 3)), draw(st.integers(2, 3)))
    # free-form union of two rectangles; skip draws that violate the
    # well-formedness rules (disconnected, pinched, ...)
    rects = [
        (
            draw(st.integers(0, 3)), draw(st.integers(0, 3)),
            draw(st.integers(2, 4)), draw(st.integers(2, 4)),
        )
        for _ in range(2)
    ]
    try:
        return CompositeDomain.from_rects(rects)
    except ValueError:
        assume(False)


@st.composite
def composite_geometries(draw) -> CompositeMosaicGeometry:
    domain = draw(composite_domains())
    try:
        return CompositeMosaicGeometry(
            subdomain_points=draw(st.sampled_from([5, 9])),
            subdomain_extent=0.5,
            domain=domain,
        )
    except ValueError:
        # anchor/lattice coverage can reject free-form unions
        assume(False)


class TestCompositeDomainProperties:
    @COMMON_SETTINGS
    @given(composite_domains())
    def test_boundary_loop_is_closed_and_axis_aligned(self, domain):
        corners = domain.boundary_corners
        assert len(corners) >= 4 and len(corners) % 2 == 0
        for (r0, c0), (r1, c1) in zip(corners, corners[1:] + corners[:1]):
            assert (r0 == r1) != (c0 == c1)  # one axis changes per segment
        # counter-clockwise orientation: shoelace area equals the cell count
        area = 0
        for (r0, c0), (r1, c1) in zip(corners, corners[1:] + corners[:1]):
            area += c0 * r1 - c1 * r0
        assert area == 2 * domain.num_cells

    @COMMON_SETTINGS
    @given(composite_geometries())
    def test_grid_boundary_loop_is_closed(self, geometry):
        rows, cols = geometry.global_boundary_indices()
        # the loop returns to its start and every step moves by at most one
        # grid point (zero at duplicated segment corners)
        assert (rows[0], cols[0]) == (rows[-1], cols[-1])
        dr = np.abs(np.diff(rows))
        dc = np.abs(np.diff(cols))
        assert np.all(dr + dc <= 1)
        # duplicated points appear exactly once per polygon corner
        assert int(np.sum((dr + dc) == 0)) == len(geometry.domain.boundary_corners) - 1
        assert geometry.boundary_point_mask()[rows, cols].all()

    @COMMON_SETTINGS
    @given(composite_geometries())
    def test_every_anchor_window_inside_mask(self, geometry):
        valid = geometry.valid_mask()
        m = geometry.subdomain_points
        anchors = geometry.anchors()
        assert anchors == sorted(anchors)  # row-major enumeration
        for r, c in anchors:
            r0, c0 = geometry.anchor_window((r, c))
            assert valid[r0: r0 + m, c0: c0 + m].all()
        union = []
        for phase in range(4):
            union.extend(geometry.anchors_for_phase(phase))
        assert sorted(union) == anchors and len(union) == len(set(union))

    @COMMON_SETTINGS
    @given(composite_geometries())
    def test_centre_lines_cover_interior_lattice_exactly(self, geometry):
        updated = np.zeros((geometry.global_ny, geometry.global_nx), dtype=bool)
        crow, ccol = geometry.center_line_local_indices()
        for anchor in geometry.anchors():
            r0, c0 = geometry.anchor_window(anchor)
            updated[r0 + crow, c0 + ccol] = True
        interior_lattice = geometry.lattice_mask() & geometry.interior_mask()
        assert np.array_equal(updated, interior_lattice)

    @COMMON_SETTINGS
    @given(st.integers(2, 6), st.integers(2, 6), st.sampled_from([5, 9]))
    def test_rectangular_composite_reduces_to_mosaic_geometry(self, sx, sy, m):
        composite = CompositeMosaicGeometry(m, 0.5, CompositeDomain.rectangle(sx, sy))
        box = MosaicGeometry(subdomain_points=m, subdomain_extent=0.5,
                             steps_x=sx, steps_y=sy)
        assert composite.is_rectangular
        assert composite.as_mosaic_geometry() == box
        assert composite.anchors() == box.anchors()
        rows_c, cols_c = composite.global_boundary_indices()
        rows_b, cols_b = box.global_grid().boundary_indices()
        assert np.array_equal(rows_c, rows_b) and np.array_equal(cols_c, cols_b)
        assert np.array_equal(composite.lattice_mask(), box.lattice_mask())
        assert composite.valid_mask().all()

    @COMMON_SETTINGS
    @given(composite_geometries(), st.integers(1, 8), st.sampled_from(["row", "morton"]))
    def test_anchor_shards_balance_irregular_counts(self, geometry, parts, ordering):
        anchors = geometry.anchors()
        shards = shard_anchors(anchors, parts, ordering=ordering)
        merged = [a for shard in shards for a in shard]
        assert sorted(merged) == sorted(anchors)
        sizes = [len(s) for s in shards]
        assert max(sizes) - min(sizes) <= 1
