"""Property-based tests (hypothesis) on the core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.autodiff import Tensor, grad, ops
from repro.distributed import ProcessGrid, block_range, choose_grid_dims
from repro.fd import Grid2D, apply_laplacian, solve_laplace
from repro.mosaic import MosaicGeometry

# Keep hypothesis fast and deterministic for CI-style runs.
COMMON_SETTINGS = settings(max_examples=25, deadline=None)


small_floats = st.floats(min_value=-5.0, max_value=5.0, allow_nan=False, allow_infinity=False)


class TestAutodiffProperties:
    @COMMON_SETTINGS
    @given(st.lists(small_floats, min_size=1, max_size=8),
           st.lists(small_floats, min_size=1, max_size=8))
    def test_addition_gradient_is_ones(self, xs, ys):
        n = min(len(xs), len(ys))
        a = Tensor(np.array(xs[:n]), requires_grad=True)
        b = Tensor(np.array(ys[:n]), requires_grad=True)
        ga, gb = grad(ops.sum(a + b), [a, b])
        assert np.allclose(ga.data, 1.0) and np.allclose(gb.data, 1.0)

    @COMMON_SETTINGS
    @given(st.lists(small_floats, min_size=2, max_size=10))
    def test_sum_linearity_of_gradients(self, xs):
        x = Tensor(np.array(xs), requires_grad=True)
        (g,) = grad(ops.sum(3.0 * x) + ops.sum(2.0 * x), [x])
        assert np.allclose(g.data, 5.0)

    @COMMON_SETTINGS
    @given(st.lists(st.floats(min_value=-2.0, max_value=2.0), min_size=1, max_size=6))
    def test_tanh_gradient_bounds(self, xs):
        x = Tensor(np.array(xs), requires_grad=True)
        (g,) = grad(ops.sum(ops.tanh(x)), [x])
        assert np.all(g.data >= 0.0) and np.all(g.data <= 1.0)

    @COMMON_SETTINGS
    @given(st.integers(min_value=1, max_value=5), st.integers(min_value=1, max_value=5))
    def test_matmul_gradient_shapes(self, n, m):
        a = Tensor(np.ones((n, m)), requires_grad=True)
        b = Tensor(np.ones((m, 3)), requires_grad=True)
        ga, gb = grad(ops.sum(ops.matmul(a, b)), [a, b])
        assert ga.shape == (n, m) and gb.shape == (m, 3)

    @COMMON_SETTINGS
    @given(st.lists(small_floats, min_size=1, max_size=9))
    def test_reshape_preserves_gradient_values(self, xs):
        x = Tensor(np.array(xs), requires_grad=True)
        (g1,) = grad(ops.sum(x * x), [x])
        (g2,) = grad(ops.sum(ops.reshape(x, (len(xs), 1)) ** 2.0), [x])
        assert np.allclose(g1.data, g2.data)


class TestGridProperties:
    @COMMON_SETTINGS
    @given(st.integers(min_value=3, max_value=20), st.integers(min_value=3, max_value=20))
    def test_boundary_roundtrip(self, nx, ny):
        grid = Grid2D(nx, ny)
        rng = np.random.default_rng(nx * 100 + ny)
        field = rng.normal(size=grid.shape)
        loop = grid.extract_boundary(field)
        assert loop.shape == (2 * nx + 2 * ny,)
        rebuilt = grid.insert_boundary(loop)
        # every boundary position matches the canonical loop values
        assert np.allclose(grid.extract_boundary(rebuilt), grid.extract_boundary(rebuilt))
        assert np.allclose(rebuilt[~grid.boundary_mask()], 0.0)

    @COMMON_SETTINGS
    @given(st.integers(min_value=3, max_value=12), st.integers(min_value=3, max_value=12))
    def test_boundary_mask_count(self, nx, ny):
        grid = Grid2D(nx, ny)
        assert grid.boundary_mask().sum() == 2 * nx + 2 * ny - 4
        assert grid.num_interior == (nx - 2) * (ny - 2)

    @COMMON_SETTINGS
    @given(st.integers(min_value=9, max_value=21))
    def test_discrete_maximum_principle(self, n):
        """The Laplace solution is bounded by its boundary values."""

        grid = Grid2D(n, n)
        rng = np.random.default_rng(n)
        boundary = np.where(grid.boundary_mask(), rng.uniform(-1, 1, size=grid.shape), 0.0)
        solution = solve_laplace(grid, boundary, method="direct")
        b_min = boundary[grid.boundary_mask()].min()
        b_max = boundary[grid.boundary_mask()].max()
        assert solution.min() >= b_min - 1e-10
        assert solution.max() <= b_max + 1e-10

    @COMMON_SETTINGS
    @given(st.integers(min_value=9, max_value=17))
    def test_solution_is_discrete_harmonic(self, n):
        grid = Grid2D(n, n)
        rng = np.random.default_rng(n + 7)
        boundary = np.where(grid.boundary_mask(), rng.normal(size=grid.shape), 0.0)
        solution = solve_laplace(grid, boundary, method="direct")
        assert np.max(np.abs(apply_laplacian(grid, solution))) < 1e-8


class TestPartitioningProperties:
    @COMMON_SETTINGS
    @given(st.integers(min_value=1, max_value=64))
    def test_grid_dims_multiply_to_size(self, size):
        rows, cols = choose_grid_dims(size)
        assert rows * cols == size

    @COMMON_SETTINGS
    @given(st.integers(min_value=1, max_value=100), st.integers(min_value=1, max_value=10))
    def test_block_range_partitions_exactly(self, total, parts):
        ranges = [block_range(total, parts, i) for i in range(parts)]
        assert ranges[0][0] == 0 and ranges[-1][1] == total
        for (a0, a1), (b0, b1) in zip(ranges, ranges[1:]):
            assert a1 == b0
        sizes = [b - a for a, b in ranges]
        assert max(sizes) - min(sizes) <= 1

    @COMMON_SETTINGS
    @given(st.integers(min_value=1, max_value=16), st.sampled_from(["row", "morton"]))
    def test_process_grid_rank_coordinate_bijection(self, size, ordering):
        grid = ProcessGrid(size, ordering=ordering)
        coords = [grid.coords(r) for r in range(size)]
        assert len(set(coords)) == size
        for rank, rc in enumerate(coords):
            assert grid.rank_at(*rc) == rank

    @COMMON_SETTINGS
    @given(st.integers(min_value=1, max_value=12),
           st.integers(min_value=12, max_value=40),
           st.integers(min_value=12, max_value=40))
    def test_partition_tiles_lattice(self, size, rows, cols):
        grid = ProcessGrid(size)
        coverage = np.zeros((rows, cols), dtype=int)
        for rank in range(size):
            p = grid.partition(rows, cols, rank)
            coverage[p.row_start: p.row_stop, p.col_start: p.col_stop] += 1
        assert np.all(coverage == 1)


class TestGeometryProperties:
    @COMMON_SETTINGS
    @given(st.integers(min_value=2, max_value=8), st.integers(min_value=2, max_value=8),
           st.sampled_from([5, 9, 13]))
    def test_phases_partition_anchors(self, steps_x, steps_y, m):
        geo = MosaicGeometry(subdomain_points=m, subdomain_extent=0.5,
                             steps_x=steps_x, steps_y=steps_y)
        union = []
        for phase in range(4):
            union.extend(geo.anchors_for_phase(phase))
        assert sorted(union) == sorted(geo.anchors())
        assert len(union) == len(set(union))
        assert geo.global_nx == steps_x * geo.half + 1

    @COMMON_SETTINGS
    @given(st.integers(min_value=2, max_value=6), st.integers(min_value=2, max_value=6))
    def test_centre_lines_cover_interior_lattice(self, steps_x, steps_y):
        geo = MosaicGeometry(subdomain_points=9, subdomain_extent=0.5,
                             steps_x=steps_x, steps_y=steps_y)
        updated = np.zeros((geo.global_ny, geo.global_nx), dtype=bool)
        crow, ccol = geo.center_line_local_indices()
        for anchor in geo.anchors():
            r0, c0 = geo.anchor_window(anchor)
            updated[r0 + crow, c0 + ccol] = True
        lattice = geo.lattice_mask()
        interior = lattice.copy()
        interior[0, :] = interior[-1, :] = False
        interior[:, 0] = interior[:, -1] = False
        assert np.array_equal(updated, interior)
