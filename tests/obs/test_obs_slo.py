"""SLO tracker: attainment, multi-window burn rates, alerting, publishing."""

import pytest

from repro.obs import SLObjective, SLOTracker
from repro.obs.metrics import MetricsRegistry


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def availability(target=0.9):
    return SLObjective(name="availability", target=target)


class TestObjective:
    def test_validation(self):
        with pytest.raises(ValueError):
            SLObjective(name="bad", target=1.5)
        with pytest.raises(ValueError):
            SLObjective(name="bad", target=0.9, latency_threshold=0.0)

    def test_latency_objective_needs_fast_success(self):
        objective = SLObjective(name="lat", target=0.9, latency_threshold=0.25)
        assert objective.is_good(True, 0.1)
        assert not objective.is_good(True, 0.5)
        assert not objective.is_good(False, 0.1)
        assert not objective.is_good(True, None)

    def test_error_budget(self):
        assert availability(0.99).error_budget == pytest.approx(0.01)


class TestBurnRates:
    def test_attainment_and_burn(self):
        clock = FakeClock()
        tracker = SLOTracker(
            objectives=[availability(0.9)], windows=(10.0,), clock=clock
        )
        for ok in (True, True, True, False):
            tracker.record(ok)
        objective = tracker.objectives[0]
        assert tracker.attainment(objective, 10.0) == pytest.approx(0.75)
        # burn = (1 - 0.75) / (1 - 0.9) = 2.5
        assert tracker.burn_rate(objective, 10.0) == pytest.approx(2.5)

    def test_no_events_is_none_not_burning(self):
        tracker = SLOTracker(objectives=[availability()], clock=FakeClock())
        objective = tracker.objectives[0]
        assert tracker.attainment(objective, 60.0) is None
        assert tracker.burn_rate(objective, 60.0) is None
        assert not tracker.burning(objective)
        assert tracker.alerts() == []

    def test_events_age_out_of_the_window(self):
        clock = FakeClock()
        tracker = SLOTracker(
            objectives=[availability(0.9)], windows=(10.0,), clock=clock
        )
        tracker.record(False)
        clock.now = 100.0
        for _ in range(3):
            tracker.record(True)
        objective = tracker.objectives[0]
        assert tracker.attainment(objective, 10.0) == pytest.approx(1.0)

    def test_multi_window_confirmation(self):
        # A short burst only trips the short window; sustained failure trips
        # both and only then does the tracker alert.
        clock = FakeClock()
        tracker = SLOTracker(
            objectives=[availability(0.8)], windows=(10.0, 100.0), clock=clock
        )
        objective = tracker.objectives[0]
        clock.now = 50.0
        for _ in range(50):
            tracker.record(True)
        clock.now = 99.0
        for _ in range(10):
            tracker.record(False)
        # Short window sees only failures; long window is diluted by successes.
        assert tracker.burn_rate(objective, 10.0) > 1.0
        assert tracker.burn_rate(objective, 100.0) <= 1.0
        assert not tracker.burning(objective)
        assert tracker.alerts() == []
        # Now make the failure sustained: both windows burn.
        for _ in range(80):
            tracker.record(False)
        assert tracker.burning(objective)
        alerts = tracker.alerts()
        assert alerts[0]["objective"] == "availability"
        assert set(alerts[0]["burn_rates"]) == {"10s", "100s"}

    def test_bounded_events(self):
        tracker = SLOTracker(
            objectives=[availability()], clock=FakeClock(), max_events=16
        )
        for _ in range(100):
            tracker.record(True)
        assert tracker.event_count == 16


class TestSnapshotAndPublish:
    def test_snapshot_shape(self):
        clock = FakeClock()
        tracker = SLOTracker(windows=(60.0,), clock=clock)
        tracker.record(True, latency=0.01)
        tracker.record(False, latency=None)
        snap = tracker.snapshot()
        assert set(snap) == {"availability", "latency"}
        window = snap["availability"]["windows"]["60s"]
        assert window["events"] == 2
        assert window["attainment"] == pytest.approx(0.5)
        assert snap["availability"]["burning"] in (True, False)

    def test_publish_labeled_gauges(self):
        clock = FakeClock()
        tracker = SLOTracker(
            objectives=[availability(0.9)], windows=(60.0,), clock=clock
        )
        tracker.record(True)
        registry = MetricsRegistry()
        tracker.publish(registry)
        snap = registry.snapshot()
        entry = snap["slo.attainment{objective=availability,window=60s}"]
        assert entry["value"] == pytest.approx(1.0)
        assert entry["labels"] == {"objective": "availability", "window": "60s"}
