"""Span tracer: nesting, exception safety, threading, exporters, overhead path."""

import json
import threading

import pytest

from repro.obs import Tracer, disable_tracing, enable_tracing, get_tracer, span
from repro.obs.trace import _NULL_SPAN


class TestNesting:
    def test_spans_nest_into_a_tree(self):
        tracer = enable_tracing()
        with span("request", request_id="r1"):
            with span("assembly"):
                pass
            with span("solve", batch=4):
                with span("kernel"):
                    pass
        roots = tracer.roots
        assert [r.name for r in roots] == ["request"]
        request = roots[0]
        assert request.attrs == {"request_id": "r1"}
        assert [c.name for c in request.children] == ["assembly", "solve"]
        assert [c.name for c in request.children[1].children] == ["kernel"]
        assert tracer.span_count() == 4

    def test_sibling_roots(self):
        tracer = enable_tracing()
        with span("a"):
            pass
        with span("b"):
            pass
        assert [r.name for r in tracer.roots] == ["a", "b"]

    def test_durations_are_ordered(self):
        tracer = enable_tracing()
        with span("outer"):
            with span("inner"):
                pass
        outer = tracer.roots[0]
        inner = outer.children[0]
        assert outer.end is not None and inner.end is not None
        assert outer.duration >= inner.duration >= 0.0

    def test_set_attr_during_span(self):
        tracer = enable_tracing()
        with span("batch") as s:
            s.set_attr("unique", 3)
        assert tracer.roots[0].attrs["unique"] == 3


class TestExceptionSafety:
    def test_exception_closes_span_and_records_error(self):
        tracer = enable_tracing()
        with pytest.raises(ValueError):
            with span("failing"):
                raise ValueError("boom")
        root = tracer.roots[0]
        assert root.end is not None
        assert root.attrs["error"] == "ValueError"

    def test_exception_does_not_corrupt_nesting(self):
        tracer = enable_tracing()
        with span("outer"):
            with pytest.raises(RuntimeError):
                with span("inner"):
                    raise RuntimeError
            with span("after"):
                pass
        root = tracer.roots[0]
        assert [c.name for c in root.children] == ["inner", "after"]
        # A span opened after the failure is a fresh root, not a child.
        with span("next_request"):
            pass
        assert [r.name for r in tracer.roots] == ["outer", "next_request"]


class TestThreads:
    def test_each_thread_contributes_its_own_roots(self):
        tracer = enable_tracing()

        def rank(index):
            with span("rank", rank=index):
                with span("solve"):
                    pass

        threads = [threading.Thread(target=rank, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        roots = tracer.roots
        assert len(roots) == 4
        assert {r.attrs["rank"] for r in roots} == {0, 1, 2, 3}
        # Workers record their own thread ids, never the main thread's
        # (the OS may reuse an id once a thread exits, so ids need not be
        # pairwise distinct across all four).
        assert threading.get_ident() not in {r.thread_id for r in roots}
        for r in roots:
            assert [c.name for c in r.children] == ["solve"]


class TestBoundedRoots:
    def test_roots_ring_is_bounded(self):
        tracer = enable_tracing(Tracer(max_roots=5))
        for i in range(12):
            with span("req", i=i):
                pass
        roots = tracer.roots
        assert len(roots) == 5
        assert [r.attrs["i"] for r in roots] == [7, 8, 9, 10, 11]
        assert "earlier roots dropped" in tracer.span_tree()

    def test_clear_resets(self):
        tracer = enable_tracing()
        with span("x"):
            pass
        tracer.clear()
        assert tracer.roots == []
        assert tracer.span_count() == 0


class TestExporters:
    def test_chrome_trace_events(self):
        tracer = enable_tracing()
        with span("request", request_id="r9"):
            with span("solve"):
                pass
        events = tracer.chrome_trace()
        assert len(events) == 2
        by_name = {e["name"]: e for e in events}
        assert by_name["request"]["ph"] == "X"
        assert by_name["request"]["args"] == {"request_id": "r9"}
        assert by_name["solve"]["dur"] <= by_name["request"]["dur"]
        assert by_name["solve"]["ts"] >= by_name["request"]["ts"]

    def test_chrome_trace_serializes_non_json_attrs(self):
        tracer = enable_tracing()
        with span("s", payload=object()):
            pass
        events = tracer.chrome_trace()
        assert isinstance(events[0]["args"]["payload"], str)
        json.dumps(events)  # whole trace must be serializable

    def test_write_chrome_trace(self, tmp_path):
        tracer = enable_tracing()
        with span("request"):
            pass
        path = tmp_path / "trace.json"
        tracer.write_chrome_trace(path)
        with open(path) as handle:
            payload = json.load(handle)
        assert payload["traceEvents"][0]["name"] == "request"

    def test_span_tree_rendering(self):
        tracer = enable_tracing()
        with span("request", request_id="r1"):
            with span("solve", batch=8):
                pass
        tree = tracer.span_tree()
        lines = tree.splitlines()
        assert "request" in lines[0] and "request_id=r1" in lines[0]
        assert lines[1].startswith("  ") and "batch=8" in lines[1]


class TestDisabledPath:
    def test_disabled_span_is_the_shared_null_singleton(self):
        disable_tracing()
        assert get_tracer() is None
        s = span("anything", attr=1)
        assert s is _NULL_SPAN
        with s as inner:
            inner.set_attr("ignored", True)  # no-op, no error

    def test_enable_returns_active_tracer(self):
        tracer = enable_tracing()
        assert get_tracer() is tracer
        custom = Tracer(max_roots=3)
        assert enable_tracing(custom) is custom
        assert get_tracer() is custom
        disable_tracing()
        assert get_tracer() is None


class TestInFlightSpans:
    """Satellite: dumps taken mid-request show where a straggler is stuck."""

    def test_current_root_and_current_span(self):
        tracer = enable_tracing()
        assert tracer.current_root() is None
        with span("request") as outer:
            with span("solve") as inner:
                assert tracer.current_root() is outer
                assert tracer.current_span() is inner
        assert tracer.current_root() is None

    def test_active_roots_across_threads(self):
        tracer = enable_tracing()
        started = threading.Event()
        release = threading.Event()

        def worker():
            with span("worker.request"):
                started.set()
                release.wait(timeout=5.0)

        thread = threading.Thread(target=worker)
        thread.start()
        started.wait(timeout=5.0)
        try:
            names = [root.name for root in tracer.active_roots()]
            assert "worker.request" in names
        finally:
            release.set()
            thread.join()
        assert tracer.active_roots() == []

    def test_span_tree_marks_open_spans(self):
        tracer = enable_tracing()
        with span("request"):
            with span("stuck"):
                tree = tracer.span_tree()
        assert tree.count("[in flight]") == 2
        assert "stuck" in tree
        # After completion the marker is gone.
        assert "[in flight]" not in tracer.span_tree()

    def test_chrome_trace_includes_open_spans(self):
        tracer = enable_tracing()
        with span("request"):
            events = tracer.chrome_trace()
            assert any(
                e["name"] == "request" and e["args"].get("in_flight") for e in events
            )
            # ... and can be excluded for completed-only dumps.
            assert tracer.chrome_trace(include_active=False) == []

    def test_open_span_duration_uses_now(self):
        tracer = enable_tracing()
        with span("request"):
            tree = tracer.span_tree()
        # The open-span rendering shows a non-negative running duration.
        assert "ms" in tree
