"""Benchmark trajectory recorder/gate (``benchmarks/record_trajectory.py``)."""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

_SCRIPT = Path(__file__).parents[2] / "benchmarks" / "record_trajectory.py"


@pytest.fixture()
def rt(tmp_path, monkeypatch):
    """The trajectory module, redirected at temp artifact/baseline dirs."""

    spec = importlib.util.spec_from_file_location("record_trajectory", _SCRIPT)
    module = importlib.util.module_from_spec(spec)
    # Register before exec: dataclass processing resolves the class's module
    # through sys.modules.
    monkeypatch.setitem(sys.modules, "record_trajectory", module)
    spec.loader.exec_module(module)
    monkeypatch.setattr(module, "ARTIFACT_DIR", tmp_path / "artifacts")
    monkeypatch.setattr(module, "BASELINE_DIR", tmp_path / "baselines")
    return module


def _write_artifacts(rt, forward=3.0, taylor=2.2, rect=(1.0, 1.0), l_shape=(1.2, 1.0),
                     megabatch=1.5, tail=1.2, bytes_pr=500_000.0):
    rt.ARTIFACT_DIR.mkdir(parents=True, exist_ok=True)
    with open(rt.ARTIFACT_DIR / "engine_forward.json", "w") as h:
        json.dump({"serving_geomean_speedup": forward}, h)
    with open(rt.ARTIFACT_DIR / "megabatch_serving.json", "w") as h:
        json.dump({"speedup": megabatch}, h)
    with open(rt.ARTIFACT_DIR / "serving_tail.json", "w") as h:
        json.dump({"p99_over_p50": tail, "bytes_per_request": bytes_pr}, h)
    with open(rt.ARTIFACT_DIR / "taylor_engine.json", "w") as h:
        json.dump({"geomean_speedup": taylor}, h)
    with open(rt.ARTIFACT_DIR / "engine_serving.json", "w") as h:
        json.dump(
            {
                "rect_2x2": {"eager_seconds": rect[0], "engine_seconds": rect[1]},
                "l_shape": {"eager_seconds": l_shape[0], "engine_seconds": l_shape[1]},
            },
            h,
        )


class TestRecord:
    def test_record_creates_schema_complete_trajectories(self, rt):
        _write_artifacts(rt)
        assert rt.record(commit="abc1234", note="seed") == 0
        for metric in rt.TRACKED_METRICS:
            assert metric.baseline_path.exists()
            data = json.loads(metric.baseline_path.read_text())
            assert data["metric"] == metric.name
            assert data["unit"] == metric.unit
            assert data["higher_is_better"] is metric.higher_is_better
            assert data["tolerance"] == metric.tolerance
            (entry,) = data["trajectory"]
            assert entry["commit"] == "abc1234"
            assert entry["config"]["note"] == "seed"
            assert "recorded_at" in entry
        forward = json.loads(
            (rt.BASELINE_DIR / "BENCH_engine_forward_serving_geomean_speedup.json").read_text()
        )
        assert forward["trajectory"][0]["value"] == 3.0

    def test_record_appends(self, rt):
        _write_artifacts(rt, forward=3.0)
        rt.record(commit="aaa")
        _write_artifacts(rt, forward=3.5)
        rt.record(commit="bbb")
        data = rt.load_trajectory(rt.TRACKED_METRICS[0])
        assert [e["commit"] for e in data["trajectory"]] == ["aaa", "bbb"]
        assert rt.baseline_value(data) == 3.5

    def test_record_without_artifacts_fails(self, rt):
        assert rt.record() == 1


class TestCheck:
    def test_passes_at_baseline(self, rt):
        _write_artifacts(rt)
        rt.record(commit="seed")
        assert rt.check() == 0

    def test_improvement_passes(self, rt):
        _write_artifacts(rt)
        rt.record(commit="seed")
        _write_artifacts(rt, forward=4.5, taylor=3.0)
        assert rt.check() == 0

    def test_small_regression_within_tolerance_passes(self, rt):
        _write_artifacts(rt, forward=3.0)
        rt.record(commit="seed")
        _write_artifacts(rt, forward=3.0 * 0.85)  # 15% < 20% tolerance
        assert rt.check() == 0

    def test_large_regression_fails(self, rt):
        _write_artifacts(rt, forward=3.0)
        rt.record(commit="seed")
        _write_artifacts(rt, forward=3.0 * 0.75)  # 25% > 20% tolerance
        assert rt.check() == 1

    def test_serving_metrics_use_looser_tolerance(self, rt):
        _write_artifacts(rt, rect=(1.0, 1.0))
        rt.record(commit="seed")
        # 30% regression on the end-to-end serving ratio: within its 35%.
        _write_artifacts(rt, rect=(0.7, 1.0))
        assert rt.check() == 0
        # 40% is out.
        _write_artifacts(rt, rect=(0.6, 1.0))
        assert rt.check() == 1

    def test_lower_is_better_metrics_gate_on_growth(self, rt):
        _write_artifacts(rt, bytes_pr=500_000.0)
        rt.record(commit="seed")
        # Shrinking bytes-per-request is an improvement, never a failure.
        _write_artifacts(rt, bytes_pr=300_000.0)
        assert rt.check() == 0
        # Growth within the 25% tolerance passes; beyond it fails.
        _write_artifacts(rt, bytes_pr=500_000.0 * 1.2)
        assert rt.check() == 0
        _write_artifacts(rt, bytes_pr=500_000.0 * 1.3)
        assert rt.check() == 1

    def test_tail_ratio_tolerates_noise_but_not_blowups(self, rt):
        _write_artifacts(rt, tail=1.2)
        rt.record(commit="seed")
        _write_artifacts(rt, tail=1.2 * 1.5)  # 50% < 75% tolerance
        assert rt.check() == 0
        _write_artifacts(rt, tail=1.2 * 2.0)  # 100% > 75%
        assert rt.check() == 1

    def test_missing_artifact_after_baseline_fails(self, rt):
        _write_artifacts(rt)
        rt.record(commit="seed")
        (rt.ARTIFACT_DIR / "engine_forward.json").unlink()
        assert rt.check() == 1

    def test_no_baselines_fails(self, rt):
        _write_artifacts(rt)
        assert rt.check() == 1

    def test_tolerance_override(self, rt):
        _write_artifacts(rt, forward=3.0)
        rt.record(commit="seed")
        _write_artifacts(rt, forward=3.0 * 0.85)
        assert rt.check(tolerance_override=0.10) == 1
        assert rt.check(tolerance_override=0.50) == 0


class TestCli:
    def test_main_round_trip(self, rt):
        _write_artifacts(rt)
        assert rt.main(["record", "--commit", "cli1"]) == 0
        assert rt.main(["check"]) == 0
        assert rt.main(["check", "--tolerance", "0.01"]) == 0  # no change at all
