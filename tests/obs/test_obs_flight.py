"""Flight recorder: tail sampling, bounded ring, Chrome-trace dump."""

import json

import pytest

from repro.obs import FlightRecord, FlightRecorder, enable_tracing, span


def _record(request_id="r1", reason="slow", **kwargs):
    return FlightRecord(
        request_id=request_id, tenant="acme", reason=reason, **kwargs
    )


class TestTailSampling:
    def test_no_threshold_until_min_samples(self):
        recorder = FlightRecorder(min_samples=8)
        for _ in range(7):
            recorder.observe_latency(0.010)
        assert recorder.latency_threshold() is None
        assert not recorder.is_slow(999.0)
        recorder.observe_latency(0.010)
        assert recorder.latency_threshold() is not None

    def test_rolling_quantile_flags_the_tail(self):
        recorder = FlightRecorder(min_samples=10, latency_quantile=90.0)
        for _ in range(100):
            recorder.observe_latency(0.010)
        assert not recorder.is_slow(0.010)
        assert recorder.is_slow(0.100)

    def test_decide_then_observe_is_order_deterministic(self):
        # The verdict for a latency depends only on *previous* samples, so
        # identical streams give identical retained sets.
        def run():
            recorder = FlightRecorder(min_samples=4, latency_quantile=50.0)
            verdicts = []
            for latency in (0.01, 0.01, 0.01, 0.01, 0.5, 0.01, 0.6):
                verdicts.append(recorder.is_slow(latency))
                recorder.observe_latency(latency)
            return verdicts

        assert run() == run()


class TestRetention:
    def test_ring_is_bounded(self):
        recorder = FlightRecorder(capacity=3)
        for i in range(5):
            recorder.retain(_record(request_id=f"r{i}"))
        records = recorder.records()
        assert len(records) == 3
        assert [r.request_id for r in records] == ["r2", "r3", "r4"]
        assert recorder.summary()["dropped"] == 2

    def test_unknown_reason_rejected(self):
        recorder = FlightRecorder()
        with pytest.raises(ValueError):
            recorder.retain(_record(reason="meh"))

    def test_records_filter_by_reason_and_counts(self):
        recorder = FlightRecorder()
        recorder.retain(_record(request_id="a", reason="slow"))
        recorder.retain(_record(request_id="b", reason="failed"))
        recorder.retain(_record(request_id="c", reason="failed"))
        assert [r.request_id for r in recorder.records("failed")] == ["b", "c"]
        counts = recorder.counts()
        assert counts["slow"] == 1 and counts["failed"] == 2
        assert counts["deadline"] == 0

    def test_as_dict_is_json_serializable(self):
        record = _record(latency_seconds=0.5, attrs={"batch_size": 4})
        json.dumps(record.as_dict())

    def test_clear(self):
        recorder = FlightRecorder()
        recorder.retain(_record())
        recorder.clear()
        assert recorder.records() == []
        assert not any(recorder.counts().values())


class TestSpanCapture:
    def test_record_carries_span_tree(self):
        tracer = enable_tracing()
        with span("serving.batch"):
            with span("serving.fused_solve"):
                pass
        recorder = FlightRecorder()
        recorder.retain(_record(spans=tracer.roots[0]))
        record = recorder.records()[0]
        tree = record.span_tree()
        assert "serving.batch" in tree
        assert "serving.fused_solve" in tree
        assert record.as_dict()["span_count"] == 2

    def test_chrome_trace_dump(self, tmp_path):
        tracer = enable_tracing()
        with span("serving.batch"):
            pass
        recorder = FlightRecorder()
        recorder.retain(
            _record(request_id="r9", reason="deadline", spans=tracer.roots[0])
        )
        path = tmp_path / "flight.json"
        recorder.write_chrome_trace(path)
        payload = json.loads(path.read_text())
        events = payload["traceEvents"]
        assert events and events[0]["name"] == "serving.batch"
        assert events[0]["args"]["flight.request_id"] == "r9"
        assert events[0]["args"]["flight.reason"] == "deadline"
        assert payload["metadata"]["summary"]["retained"] == 1
