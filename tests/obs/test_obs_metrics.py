"""Metrics registry: concurrency, bounded histograms, merge, exporters."""

import json
import threading

import numpy as np
import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry, to_json, to_prometheus


class TestCounter:
    def test_inc_and_value(self):
        c = Counter("requests")
        c.inc()
        c.inc(4)
        assert c.value == 5
        assert c.snapshot() == {"type": "counter", "value": 5}

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1)

    def test_concurrent_increments_are_exact(self):
        c = Counter("hits")

        def worker():
            for _ in range(1000):
                c.inc()

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 8000


class TestGauge:
    def test_set_and_inc(self):
        g = Gauge("depth")
        g.set(3.0)
        g.inc(2.0)
        assert g.value == 5.0

    def test_merge_keeps_most_written(self):
        a, b = Gauge("g"), Gauge("g")
        a.set(1.0)
        b.set(2.0)
        b.set(3.0)
        a.merge(b.snapshot())
        assert a.value == 3.0
        # The less-written side does not overwrite.
        fresh = Gauge("g")
        fresh.set(9.0)
        a.merge(fresh.snapshot())
        assert a.value == 3.0


class TestHistogram:
    def test_percentiles_match_numpy_exactly(self):
        rng = np.random.default_rng(7)
        values = rng.normal(size=500)
        h = Histogram("latency", window=1024)
        for v in values:
            h.observe(v)
        for q in (0, 25, 50, 90, 99, 100):
            assert h.percentile(q) == pytest.approx(float(np.percentile(values, q)), abs=0)

    def test_window_wraps_but_stream_stats_stay_exact(self):
        h = Histogram("latency", window=8)
        values = list(range(100))
        for v in values:
            h.observe(v)
        assert h.count == 100
        assert h.sum == float(sum(values))
        assert h.mean == pytest.approx(np.mean(values))
        snap = h.snapshot()
        assert snap["min"] == 0.0 and snap["max"] == 99.0
        # Window keeps only the most recent 8, oldest first.
        assert h.values().tolist() == [92, 93, 94, 95, 96, 97, 98, 99]
        assert h.percentile(50) == pytest.approx(np.percentile(values[-8:], 50))

    def test_memory_is_bounded(self):
        h = Histogram("latency", window=16)
        for v in range(100_000):
            h.observe(float(v))
        assert h.values().size == 16
        assert h._ring.size == 16  # no hidden growth

    def test_concurrent_observe_exact_count_and_sum(self):
        h = Histogram("latency", window=64)

        def worker():
            for _ in range(500):
                h.observe(1.0)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert h.count == 4000
        assert h.sum == 4000.0

    def test_merge_concatenates_and_trims(self):
        a = Histogram("h", window=8)
        b = Histogram("h", window=8)
        for v in range(4):
            a.observe(float(v))          # 0..3
        for v in range(10, 16):
            b.observe(float(v))          # 10..15
        a.merge(b.snapshot())
        assert a.count == 10
        assert a.sum == float(sum(range(4)) + sum(range(10, 16)))
        # 4 + 6 observations trim to the window's most recent 8.
        assert a.values().tolist() == [2.0, 3.0, 10.0, 11.0, 12.0, 13.0, 14.0, 15.0]
        snap = a.snapshot()
        assert snap["min"] == 0.0 and snap["max"] == 15.0

    def test_empty_histogram_snapshot(self):
        snap = Histogram("h").snapshot()
        assert snap["count"] == 0
        assert snap["p50"] == 0.0 and snap["min"] == 0.0

    def test_window_validation(self):
        with pytest.raises(ValueError):
            Histogram("h", window=0)


class TestMetricsRegistry:
    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("b") is reg.histogram("b")
        assert set(reg.names()) == {"a", "b"}
        assert "a" in reg and "zzz" not in reg

    def test_type_conflicts_raise(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(TypeError):
            reg.gauge("a")

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("requests").inc(3)
        reg.gauge("depth").set(2.0)
        reg.histogram("latency").observe(0.5)
        snap = reg.snapshot()
        assert snap["requests"] == {"type": "counter", "value": 3}
        assert snap["depth"]["value"] == 2.0
        assert snap["latency"]["count"] == 1
        assert "window_values" not in snap["latency"]
        assert "window_values" in reg.snapshot(include_window=True)["latency"]

    def test_merge_registries(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("requests").inc(2)
        b.counter("requests").inc(3)
        b.counter("only_b").inc(1)
        b.histogram("latency").observe(1.0)
        a.merge(b)
        assert a.counter("requests").value == 5
        assert a.counter("only_b").value == 1
        assert a.histogram("latency").count == 1

    def test_merge_snapshot_dict(self):
        a = MetricsRegistry()
        a.merge({"requests": {"type": "counter", "value": 7}})
        assert a.counter("requests").value == 7
        with pytest.raises(ValueError):
            a.merge({"weird": {"type": "mystery"}})

    def test_concurrent_mixed_updates(self):
        reg = MetricsRegistry()

        def worker(index):
            for i in range(300):
                reg.counter("requests").inc()
                reg.histogram("latency").observe(float(index * 300 + i))

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.counter("requests").value == 1800
        assert reg.histogram("latency").count == 1800


class TestExporters:
    def _registry(self):
        reg = MetricsRegistry()
        reg.counter("serving.requests").inc(4)
        reg.gauge("serving.queue_depth").set(2.0)
        h = reg.histogram("serving.latency_seconds")
        for v in (0.1, 0.2, 0.3):
            h.observe(v)
        return reg

    def test_to_json_round_trips(self):
        payload = json.loads(to_json(self._registry().snapshot()))
        assert payload["serving.requests"]["value"] == 4

    def test_prometheus_text(self):
        text = to_prometheus(self._registry().snapshot())
        assert "serving_requests_total 4" in text
        assert "serving_queue_depth 2" in text
        assert 'serving_latency_seconds{quantile="0.5"}' in text
        assert "serving_latency_seconds_count 3" in text
        assert "serving_latency_seconds_sum" in text
        # exposition format: every metric carries TYPE metadata
        assert "# TYPE serving_requests_total counter" in text


class TestLabeledMetrics:
    def test_labeled_series_are_distinct_objects(self):
        reg = MetricsRegistry()
        a = reg.counter("flight.records", labels={"reason": "slow"})
        b = reg.counter("flight.records", labels={"reason": "failed"})
        assert a is not b
        assert a is reg.counter("flight.records", labels={"reason": "slow"})
        a.inc(2)
        b.inc(1)
        snap = reg.snapshot()
        assert snap["flight.records{reason=slow}"]["value"] == 2
        assert snap["flight.records{reason=slow}"]["labels"] == {"reason": "slow"}

    def test_unlabeled_snapshot_shape_is_unchanged(self):
        reg = MetricsRegistry()
        reg.counter("plain").inc()
        snap = reg.snapshot()["plain"]
        assert "labels" not in snap and "name" not in snap

    def test_merge_preserves_labels(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.counter("c", labels={"k": "v"}).inc(1)
        b.counter("c", labels={"k": "v"}).inc(2)
        merged = MetricsRegistry()
        merged.merge(a.snapshot())
        merged.merge(b.snapshot())
        assert merged.counter("c", labels={"k": "v"}).value == 3


class TestPrometheusEscaping:
    """Satellite: label values escape, metric/label names sanitize."""

    @staticmethod
    def _parse_labels(line: str) -> dict:
        # Minimal exposition-format label parser for the round-trip check.
        body = line[line.index("{") + 1 : line.rindex("}")]
        out = {}
        i = 0
        while i < len(body):
            eq = body.index("=", i)
            name = body[i:eq]
            assert body[eq + 1] == '"'
            j = eq + 2
            value = []
            while body[j] != '"':
                if body[j] == "\\":
                    escape = body[j + 1]
                    value.append({"n": "\n", "\\": "\\", '"': '"'}[escape])
                    j += 2
                else:
                    value.append(body[j])
                    j += 1
            out[name] = "".join(value)
            i = j + 2  # skip closing quote and comma
        return out

    def test_label_values_round_trip(self):
        hostile = 'multi\nline "quoted" back\\slash'
        reg = MetricsRegistry()
        reg.gauge("memory.live_bytes", labels={"owner": hostile}).set(7.0)
        text = to_prometheus(reg.snapshot())
        sample = next(
            line for line in text.splitlines() if line.startswith("memory_live_bytes{")
        )
        assert "\n" not in sample  # newline must be escaped, not emitted
        assert self._parse_labels(sample) == {"owner": hostile}

    def test_metric_and_label_names_sanitized(self):
        reg = MetricsRegistry()
        reg.counter("serving.flight-records", labels={"bad-name.dot": "x"}).inc()
        text = to_prometheus(reg.snapshot())
        assert 'serving_flight_records_total{bad_name_dot="x"} 1' in text
        assert "# TYPE serving_flight_records_total counter" in text

    def test_one_type_line_across_labeled_series(self):
        reg = MetricsRegistry()
        reg.counter("flight.records", labels={"reason": "slow"}).inc()
        reg.counter("flight.records", labels={"reason": "failed"}).inc()
        text = to_prometheus(reg.snapshot())
        assert text.count("# TYPE flight_records_total counter") == 1
        assert 'flight_records_total{reason="slow"} 1' in text
        assert 'flight_records_total{reason="failed"} 1' in text

    def test_labeled_histogram_merges_quantile_label(self):
        reg = MetricsRegistry()
        h = reg.histogram("latency.seconds", labels={"tenant": "acme"})
        for v in (0.1, 0.2):
            h.observe(v)
        text = to_prometheus(reg.snapshot())
        assert 'latency_seconds{quantile="0.5",tenant="acme"}' in text
        assert 'latency_seconds_count{tenant="acme"} 2' in text
