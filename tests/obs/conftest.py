"""Shared fixtures for the observability tests."""

import pytest

from repro.obs import disable_memory_accounting, disable_tracing


@pytest.fixture(autouse=True)
def _tracing_off_after_test():
    """Tracing is global state; never let one test leak it into the next."""

    yield
    disable_tracing()


@pytest.fixture(autouse=True)
def _memory_accounting_off_after_test():
    """Memory accounting is global state too; reset between tests."""

    yield
    disable_memory_accounting()
