"""Per-kernel profiling: accumulator semantics and bitwise parity on/off.

The load-bearing contract: enabling ``profile=`` on a compiled artifact
changes *nothing* about what it computes — same kernels, same buffers, same
floating-point order — it only wraps each plan step in a clock pair.  Both
compiled surfaces (the inference ``CompiledModule`` and the training jet
``CompiledValueAndGrad``) are asserted bitwise against their unprofiled
selves here.
"""

import numpy as np
import pytest

from repro.autodiff import Tensor, grad
from repro.engine import CompiledValueAndGrad, compile_module
from repro.nn import MLP
from repro.obs import KernelProfiler
from repro.pde.losses import laplace_residual_loss
from repro.utils import seeded_rng


class TestKernelProfiler:
    def test_record_accumulates_per_op(self):
        p = KernelProfiler()
        p.record("affine", 0.010, 100)
        p.record("affine", 0.030, 100)
        p.record("add", 0.005, 40)
        top = p.top_kernels()
        assert [row["op"] for row in top] == ["affine", "add"]
        affine = top[0]
        assert affine["calls"] == 2
        assert affine["seconds"] == pytest.approx(0.040)
        assert affine["bytes"] == 200
        assert affine["fraction"] == pytest.approx(0.040 / 0.045)
        assert p.total_calls == 3
        assert p.total_seconds == pytest.approx(0.045)

    def test_top_kernels_limit(self):
        p = KernelProfiler()
        for i in range(5):
            p.record(f"op{i}", float(i + 1), 0)
        top = p.top_kernels(n=2)
        assert [row["op"] for row in top] == ["op4", "op3"]

    def test_events_and_merge(self):
        a, b = KernelProfiler(), KernelProfiler()
        a.record("affine", 0.01, 10)
        a.count("plan_build")
        b.record("affine", 0.02, 20)
        b.record("add", 0.01, 5)
        b.count("plan_build")
        b.count("plan_eviction", 2)
        a.merge(b)
        assert a.events() == {"plan_build": 2, "plan_eviction": 2}
        assert a.total_calls == 3
        top = {row["op"]: row for row in a.top_kernels()}
        assert top["affine"]["calls"] == 2
        assert top["affine"]["bytes"] == 30

    def test_report_and_as_dict(self):
        p = KernelProfiler()
        p.record("affine", 0.01, 2_000_000)
        p.count("plan_build")
        report = p.report()
        assert "top kernels" in report and "affine" in report
        assert "plan_build=1" in report
        d = p.as_dict()
        assert d["events"] == {"plan_build": 1}
        assert d["kernels"][0]["op"] == "affine"

    def test_clear(self):
        p = KernelProfiler()
        p.record("x", 1.0, 1)
        p.count("e")
        p.clear()
        assert p.total_calls == 0 and p.events() == {}


def _mlp(seed=0):
    return MLP([6, 16, 16, 1], rng=seeded_rng(seed))


class TestCompiledModuleParity:
    def test_profile_on_is_bitwise_identical(self):
        model = _mlp()
        plain = compile_module(model)
        profiled = compile_module(model, profile=True)
        rng = seeded_rng(5)
        for batch in (1, 4, 9):
            x = rng.normal(size=(batch, 6))
            a = plain(Tensor(x)).data
            b = profiled(Tensor(x)).data
            assert a.tobytes() == b.tobytes()
        profiler = profiled.profiler
        assert profiler is not None
        assert profiler.total_calls > 0
        assert profiler.events().get("plan_build", 0) >= 1
        assert all(row["bytes"] > 0 for row in profiler.top_kernels())

    def test_kernel_report_requires_profiling(self):
        plain = compile_module(_mlp())
        with pytest.raises(RuntimeError):
            plain.kernel_report()

    def test_unprofiled_module_has_no_profiler(self):
        assert compile_module(_mlp()).profiler is None


class TestCompiledJetParity:
    def _program(self, model, profile):
        return CompiledValueAndGrad(
            lambda g, x: laplace_residual_loss(model, g, x, method="taylor"),
            model,
            profile=profile,
        )

    def test_profile_on_is_bitwise_identical(self):
        from repro.models import SDNet

        model = SDNet(
            boundary_size=16, hidden_size=10, trunk_layers=1,
            embedding_channels=(2,), rng=3,
        )
        plain = self._program(model, profile=False)
        profiled = self._program(model, profile=True)
        rng = seeded_rng(9)
        for batch in (3, 5):
            g = rng.normal(size=(batch, 16))
            x = rng.uniform(size=(batch, 4, 2)) * 0.5
            loss_a, grads_a = plain(g, x)
            loss_b, grads_b = profiled(g, x)
            assert loss_a.tobytes() == loss_b.tobytes()
            for ga, gb in zip(grads_a, grads_b):
                assert ga.tobytes() == gb.tobytes()
        profiler = profiled.profiler
        assert profiler.total_calls > 0
        assert profiler.events().get("plan_build", 0) >= 1
        assert "top kernels" in profiled.kernel_report()

    def test_kernel_report_requires_profiling(self):
        model = _mlp()
        program = CompiledValueAndGrad(
            lambda x: (model(x) * model(x)).sum(), model,
        )
        with pytest.raises(RuntimeError):
            program.kernel_report()
