"""Memory accountant: gauges, global enable/disable, instrumented-site balance."""

import numpy as np

from repro.obs import (
    MemoryAccountant,
    disable_memory_accounting,
    enable_memory_accounting,
    get_accountant,
)
from repro.obs import memory as obs_memory
from repro.obs.metrics import MetricsRegistry


class TestAccountant:
    def test_live_peak_and_allocated(self):
        acct = MemoryAccountant()
        acct.add("a", 100)
        acct.add("a", 50)
        acct.sub("a", 120)
        assert acct.live_bytes("a") == 30
        assert acct.peak_bytes("a") == 150
        assert acct.allocated_bytes("a") == 150
        assert acct.event_count() == 3

    def test_totals_sum_over_owners(self):
        acct = MemoryAccountant()
        acct.add("a", 100)
        acct.add("b", 200)
        acct.sub("b", 50)
        assert acct.live_bytes() == 250
        assert acct.peak_bytes() == 300
        assert acct.owners() == ["a", "b"]

    def test_sub_clamps_at_zero(self):
        # Bytes charged while accounting was off must not drive gauges
        # negative when they are later released with accounting on.
        acct = MemoryAccountant()
        acct.sub("a", 500)
        assert acct.live_bytes("a") == 0

    def test_bytes_per_request(self):
        acct = MemoryAccountant()
        acct.add("a", 1000)
        assert acct.bytes_per_request(4) == 250.0
        assert acct.bytes_per_request(0) == 0.0

    def test_snapshot_shape(self):
        acct = MemoryAccountant()
        acct.add("x", 10)
        snap = acct.snapshot()
        assert snap["total_live_bytes"] == 10
        assert snap["owners"]["x"]["allocs"] == 1
        assert set(snap["owners"]["x"]) == {
            "live_bytes", "peak_bytes", "allocated_bytes", "allocs", "frees",
        }

    def test_publish_uses_owner_labels(self):
        acct = MemoryAccountant()
        acct.add("engine.plans", 64)
        registry = MetricsRegistry()
        acct.publish(registry)
        snap = registry.snapshot()
        entry = snap['memory.live_bytes{owner=engine.plans}']
        assert entry["value"] == 64
        assert entry["labels"] == {"owner": "engine.plans"}

    def test_report_renders(self):
        acct = MemoryAccountant()
        acct.add("a", 1)
        assert "memory accounting" in acct.report()
        assert "a" in acct.report()


class TestGlobalSwitch:
    def test_disabled_by_default(self):
        assert get_accountant() is None
        obs_memory.add("a", 100)  # must be a no-op, not an error
        obs_memory.sub("a", 100)

    def test_enable_routes_module_functions(self):
        acct = enable_memory_accounting()
        assert get_accountant() is acct
        obs_memory.add("a", 7)
        assert acct.live_bytes("a") == 7
        disable_memory_accounting()
        obs_memory.add("a", 7)
        assert acct.live_bytes("a") == 7  # unchanged once disabled


class TestInstrumentedSites:
    """The built-in add/sub sites must balance: live bytes return to zero."""

    @staticmethod
    def _plan():
        from repro.engine.runtime import ExecutionPlan
        from repro.engine.trace import trace
        from repro.nn import MLP

        mlp = MLP([3, 8, 1], rng=np.random.default_rng(0))
        return ExecutionPlan(trace(mlp, np.zeros((4, 3))))

    def test_engine_plan_cache_balances(self):
        from repro.engine.runtime import PlanCache

        acct = enable_memory_accounting()
        cache = PlanCache(max_bytes=None)
        cache.put("k", self._plan())  # buffers are charged at construction
        assert acct.live_bytes(obs_memory.ENGINE_PLAN_BUFFERS) > 0
        cache.clear()
        assert acct.live_bytes(obs_memory.ENGINE_PLAN_BUFFERS) == 0

    def test_plan_cache_eviction_releases(self):
        from repro.engine.runtime import PlanCache

        acct = enable_memory_accounting()
        cache = PlanCache(max_bytes=1)  # evicts everything but the newest
        for key in ("a", "b", "c"):
            cache.put(key, self._plan())
        assert len(cache) == 1
        assert acct.live_bytes(obs_memory.ENGINE_PLAN_BUFFERS) == cache.bytes_in_use
        cache.clear()
        assert acct.live_bytes(obs_memory.ENGINE_PLAN_BUFFERS) == 0

    def test_solution_cache_balances(self, small_geometry):
        from repro.serving.api import SolveRequest
        from repro.serving.cache import CachedSolution, SolutionCache

        acct = enable_memory_accounting()
        cache = SolutionCache(capacity=2)
        n = small_geometry.global_boundary_size
        rng = np.random.default_rng(0)
        for i in range(4):  # 2 evictions
            request = SolveRequest.create(
                small_geometry, rng.normal(size=n), request_id=f"r{i}"
            )
            entry = CachedSolution(
                solution=np.zeros((5, 5)), iterations=1, converged=True
            )
            cache.put(request, entry)
        assert acct.live_bytes(obs_memory.SOLUTION_CACHE) == 2 * entry.nbytes
        cache.clear()
        assert acct.live_bytes(obs_memory.SOLUTION_CACHE) == 0
