"""Shared fixtures for the serving-layer tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.pde import HARMONIC_FUNCTIONS
from repro.utils import seeded_rng


@pytest.hookimpl(tryfirst=True, hookwrapper=True)
def pytest_runtest_makereport(item, call):
    # Expose each phase's report on the item so fixtures can tell whether the
    # test failed (used to persist Chrome traces of failing fault scenarios).
    outcome = yield
    report = outcome.get_result()
    setattr(item, "rep_" + report.when, report)


@pytest.fixture()
def harmonic_loops(small_geometry):
    """Deterministic batch of boundary loops: random harmonic combinations."""

    def make(count: int, seed: int = 0) -> np.ndarray:
        grid = small_geometry.global_grid()
        rng = seeded_rng(seed)
        names = sorted(HARMONIC_FUNCTIONS)
        loops = []
        for _ in range(count):
            weights = rng.normal(size=len(names))
            loops.append(
                grid.boundary_from_function(
                    lambda x, y, w=weights: sum(
                        wi * HARMONIC_FUNCTIONS[name](x, y)
                        for wi, name in zip(w, names)
                    )
                )
            )
        return np.stack(loops)

    return make


class FakeClock:
    """Deterministic, manually advanced monotonic clock."""

    def __init__(self, start: float = 0.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture()
def fake_clock() -> FakeClock:
    return FakeClock()
