"""End-to-end server behaviour: batching, caching, sharding, stats."""

import numpy as np
import pytest

from repro.mosaic import FDSubdomainSolver, MosaicFlowPredictor, MosaicGeometry
from repro.serving import (
    BatchPolicy,
    Server,
    ServingEstimator,
    SolutionCache,
    SolveRequest,
)


def _server(clock, **kwargs):
    kwargs.setdefault("policy", BatchPolicy(max_batch_size=8, max_wait_seconds=1e9))
    kwargs.setdefault("cache", SolutionCache(capacity=64))
    return Server(clock=clock, **kwargs)


class TestSubmitDrain:
    def test_serves_correct_solutions(self, small_geometry, harmonic_loops, fake_clock):
        loops = harmonic_loops(6, seed=1)
        server = _server(fake_clock, world_size=2)
        ids = [
            server.submit(
                SolveRequest.create(small_geometry, loop, tol=1e-6, max_iterations=120)
            )
            for loop in loops
        ]
        results = server.drain()
        assert sorted(results) == sorted(ids)
        solver = FDSubdomainSolver(small_geometry.subdomain_grid())
        for loop, request_id in zip(loops, ids):
            reference = MosaicFlowPredictor(small_geometry, solver, batched=True).run(
                loop, max_iterations=120, tol=1e-6
            )
            np.testing.assert_allclose(
                results[request_id].solution, reference.solution, atol=1e-8, rtol=0
            )
            assert results[request_id].iterations == reference.iterations

    def test_batches_fewer_runs_than_requests(self, small_geometry, harmonic_loops,
                                              fake_clock):
        loops = harmonic_loops(8, seed=2)
        server = _server(fake_clock)
        for loop in loops:
            server.submit(SolveRequest.create(small_geometry, loop, max_iterations=40))
        results = server.drain()
        assert len(results) == 8
        assert server.stats.fused_runs == 1
        assert server.stats.solver_runs_saved == 7
        assert all(r.batch_size == 8 for r in results.values())

    def test_queued_requests_do_not_count_as_savings(self, small_geometry,
                                                     harmonic_loops, fake_clock):
        server = _server(fake_clock)  # max_batch_size=8: nothing executes yet
        for loop in harmonic_loops(3, seed=9):
            server.submit(SolveRequest.create(small_geometry, loop, max_iterations=30))
        assert server.pending == 3
        assert server.stats.solver_runs_saved == 0
        server.drain()
        assert server.stats.solver_runs_saved == 2  # 3 completed, 1 fused run

    def test_full_batch_executes_during_submit(self, small_geometry, harmonic_loops,
                                               fake_clock):
        loops = harmonic_loops(4, seed=3)
        server = _server(fake_clock,
                         policy=BatchPolicy(max_batch_size=2, max_wait_seconds=1e9))
        ids = [
            server.submit(SolveRequest.create(small_geometry, loop, max_iterations=30))
            for loop in loops
        ]
        # two full batches of 2 already ran inside submit()
        assert server.pending == 0
        assert server.stats.fused_runs == 2
        assert server.result(ids[0]) is not None
        assert len(server.drain()) == 4

    def test_deadline_releases_partial_batch(self, small_geometry, harmonic_loops,
                                             fake_clock):
        loops = harmonic_loops(2, seed=4)
        server = _server(fake_clock,
                         policy=BatchPolicy(max_batch_size=100, max_wait_seconds=5.0))
        server.submit(SolveRequest.create(small_geometry, loops[0], max_iterations=30))
        assert server.pending == 1
        fake_clock.advance(6.0)
        server.submit(SolveRequest.create(small_geometry, loops[1], max_iterations=30))
        # the deadline-expired group (both requests) ran inside the second submit
        assert server.pending == 0
        assert server.stats.fused_runs == 1

    def test_rejects_duplicate_ids_and_raw_arrays(self, small_geometry, fake_clock):
        server = _server(fake_clock)
        size = small_geometry.global_grid().boundary_size
        request = SolveRequest.create(small_geometry, np.zeros(size))
        server.submit(request)
        with pytest.raises(ValueError, match="duplicate"):
            server.submit(request)
        with pytest.raises(TypeError):
            server.submit(np.zeros(size))


class TestCachingPaths:
    def test_lru_hit_skips_solve(self, small_geometry, harmonic_loops, fake_clock):
        loops = harmonic_loops(2, seed=5)
        server = _server(fake_clock)
        first = server.submit(
            SolveRequest.create(small_geometry, loops[0], max_iterations=40)
        )
        server.drain()
        runs_before = server.stats.fused_runs
        again = server.submit(
            SolveRequest.create(small_geometry, loops[0], max_iterations=40)
        )
        results = server.drain()
        assert server.stats.fused_runs == runs_before
        assert server.stats.cache_hits == 1
        assert results[again].cache_hit
        assert np.array_equal(
            results[again].solution, server.cache.get(
                SolveRequest.create(small_geometry, loops[0], max_iterations=40)
            ).solution,
        )
        assert first != again

    def test_in_batch_duplicates_solved_once(self, small_geometry, harmonic_loops,
                                             fake_clock):
        loops = harmonic_loops(1, seed=6)
        server = _server(fake_clock)
        ids = [
            server.submit(
                SolveRequest.create(small_geometry, loops[0], max_iterations=40)
            )
            for _ in range(3)
        ]
        results = server.drain()
        assert server.stats.fused_runs == 1
        assert server.stats.dedup_hits == 2
        assert server.stats.cache_hit_rate == pytest.approx(2 / 3)
        # batch_size reports the fused solver run's actual row count (1
        # unique BVP), not the number of requests it answered.
        assert all(results[i].batch_size == 1 for i in ids)
        a, b, c = (results[i].solution for i in ids)
        assert np.array_equal(a, b) and np.array_equal(b, c)

    def test_stats_report_renders(self, small_geometry, harmonic_loops, fake_clock):
        server = _server(fake_clock)
        server.submit(
            SolveRequest.create(small_geometry, harmonic_loops(1, seed=7)[0],
                                max_iterations=30)
        )
        server.drain()
        report = server.stats.report()
        assert "requests" in report and "p99" in report
        d = server.stats.as_dict()
        assert d["requests"] == 1 and d["fused_runs"] == 1


class TestEmptyDrain:
    def test_empty_drain_emits_no_spans_or_metrics(self, fake_clock):
        from repro.obs import disable_tracing, enable_tracing

        server = _server(fake_clock)
        tracer = enable_tracing()
        try:
            assert server.drain() == {}
        finally:
            disable_tracing()
        assert tracer.span_count() == 0
        d = server.stats.as_dict()
        assert d["requests"] == 0 and d["fused_runs"] == 0
        assert d["latency_mean"] == 0.0 and d["mean_batch_size"] == 0.0

    def test_drain_after_drain_is_quiet(self, small_geometry, harmonic_loops,
                                        fake_clock):
        from repro.obs import disable_tracing, enable_tracing

        server = _server(fake_clock)
        server.submit(
            SolveRequest.create(small_geometry, harmonic_loops(1, seed=10)[0],
                                max_iterations=30)
        )
        server.drain()
        snapshot = server.stats.as_dict()
        tracer = enable_tracing()
        try:
            assert server.drain() == {}
        finally:
            disable_tracing()
        assert tracer.span_count() == 0
        after = server.stats.as_dict()
        after.pop("obs"), snapshot.pop("obs")
        assert after == snapshot


class TestMixedGeometries:
    def test_groups_run_separately_but_all_complete(self, small_geometry, fake_clock):
        other = MosaicGeometry(subdomain_points=9, subdomain_extent=0.5,
                               steps_x=6, steps_y=4)
        server = _server(fake_clock)
        ids = []
        for geometry in (small_geometry, other, small_geometry, other):
            grid = geometry.global_grid()
            loop = grid.boundary_from_function(lambda x, y: x + 2 * y)
            ids.append(
                server.submit(
                    SolveRequest.create(geometry, loop, max_iterations=40)
                )
            )
        results = server.drain()
        assert len(results) == 4
        assert server.stats.fused_runs == 2  # one per geometry group

    def test_estimator_caps_batch_size(self, small_geometry, harmonic_loops, fake_clock):
        # Absurdly slow platform + tight budget -> batches of one.
        estimator = ServingEstimator.for_platform("V100", hidden=512, trunk_layers=8,
                                                  efficiency=1e-6)
        server = _server(
            fake_clock,
            policy=BatchPolicy(max_batch_size=64, max_wait_seconds=1e9),
            estimator=estimator,
            latency_budget_seconds=1e-9,
        )
        for loop in harmonic_loops(3, seed=8):
            server.submit(SolveRequest.create(small_geometry, loop, max_iterations=20))
        server.drain()
        assert server.stats.fused_runs == 3
        assert server.stats.mean_batch_size == 1.0
