"""Serving composite-domain requests through the existing batched path.

Mirrors the rectangular parity guarantee of PR 1: a composite-domain request
submitted through ``Server.submit()`` (canonicalization, batching, worker
pool, fused runner) produces bit-for-bit the same solution as a standalone
``MosaicFlowPredictor.run`` on the same composite geometry.
"""

import numpy as np
import pytest

from repro.domains import CompositeDomain, CompositeMosaicGeometry
from repro.mosaic import FDSubdomainSolver, MosaicFlowPredictor
from repro.serving import (
    BatchPolicy,
    RequestValidationError,
    Server,
    SolutionCache,
    SolveRequest,
)


def _harmonic_mix(weights):
    def fn(x, y):
        return weights[0] * (x * x - y * y) + weights[1] * x * y + weights[2] * x

    return fn


@pytest.fixture(scope="module")
def l_geometry():
    return CompositeMosaicGeometry(9, 0.5, CompositeDomain.l_shape(6, 6, 3, 3))


def _solver(geometry):
    return FDSubdomainSolver(geometry.subdomain_grid(), method="direct")


class TestCompositeRequests:
    def test_create_validates_composite_loop_length(self, l_geometry):
        with pytest.raises(RequestValidationError, match="boundary loop"):
            SolveRequest.create(l_geometry, np.zeros(7))
        request = SolveRequest.from_function(l_geometry, _harmonic_mix((1.0, 0.5, 0.0)))
        assert request.boundary_loop.shape == (l_geometry.global_boundary_size,)
        assert request.geometry is l_geometry

    def test_linear_init_rejected_for_composite(self, l_geometry):
        loop = np.zeros(l_geometry.global_boundary_size)
        with pytest.raises(RequestValidationError, match="linear"):
            SolveRequest.create(l_geometry, loop, init_mode="linear")

    def test_group_key_separates_shapes(self, l_geometry):
        other = CompositeMosaicGeometry(9, 0.5, CompositeDomain.l_shape(6, 6, 3, 2))
        a = SolveRequest.create(l_geometry, np.zeros(l_geometry.global_boundary_size))
        b = SolveRequest.create(other, np.zeros(other.global_boundary_size))
        assert a.group_key != b.group_key


class TestCompositeServingParity:
    @pytest.mark.parametrize("world_size", [1, 2])
    def test_submit_matches_standalone_predictor_bitwise(self, l_geometry, fake_clock,
                                                         world_size):
        weights = [(1.0, 0.3, 0.0), (0.2, -1.0, 0.5), (-0.7, 0.1, 1.0)]
        server = Server(
            policy=BatchPolicy(max_batch_size=8, max_wait_seconds=1e9),
            cache=SolutionCache(capacity=16),
            world_size=world_size,
            clock=fake_clock,
        )
        requests = [
            SolveRequest.create(
                l_geometry,
                l_geometry.boundary_from_function(_harmonic_mix(w)),
                tol=1e-7,
                max_iterations=200,
            )
            for w in weights
        ]
        ids = [server.submit(r) for r in requests]
        results = server.drain()
        assert sorted(results) == sorted(ids)

        for request, request_id in zip(requests, ids):
            reference = MosaicFlowPredictor(l_geometry, _solver(l_geometry)).run(
                request.boundary_loop, max_iterations=200, tol=1e-7
            )
            served = results[request_id]
            assert served.iterations == reference.iterations
            assert served.converged == reference.converged
            np.testing.assert_array_equal(served.solution, reference.solution)

    def test_cache_hits_on_repeated_composite_request(self, l_geometry, fake_clock):
        server = Server(
            policy=BatchPolicy(max_batch_size=1, max_wait_seconds=1e9),
            cache=SolutionCache(capacity=16),
            clock=fake_clock,
        )
        loop = l_geometry.boundary_from_function(_harmonic_mix((1.0, 0.0, 0.0)))
        first = server.submit(SolveRequest.create(l_geometry, loop, max_iterations=60))
        again = server.submit(SolveRequest.create(l_geometry, loop, max_iterations=60))
        results = server.drain()
        assert server.stats.cache_hits == 1
        assert results[again].cache_hit
        np.testing.assert_array_equal(results[first].solution, results[again].solution)

    def test_mixed_rectangular_and_composite_groups(self, small_geometry, l_geometry,
                                                    fake_clock):
        server = Server(
            policy=BatchPolicy(max_batch_size=4, max_wait_seconds=1e9),
            cache=SolutionCache(capacity=16),
            clock=fake_clock,
        )
        ids = []
        for geometry in (small_geometry, l_geometry, small_geometry, l_geometry):
            ids.append(
                server.submit(
                    SolveRequest.from_function(
                        geometry, _harmonic_mix((1.0, 0.2, 0.1)), max_iterations=60
                    )
                )
            )
        results = server.drain()
        assert len(results) == 4
        assert server.stats.fused_runs == 2  # one per geometry group
