"""Durable request store: journal format, torn writes, crash recovery.

The scenarios simulate a process crash by opening a *fresh* journal /
store / server over the same file the "crashed" instance wrote — recovery
must replay completed keys bitwise-identically and leave interrupted claims
reclaimable exactly once.
"""

import re
import shutil
from pathlib import Path

import numpy as np
import pytest

from repro.serving import (
    JOURNAL_WRITE,
    TORN,
    BatchPolicy,
    FaultInjector,
    FaultSpec,
    InjectedFault,
    JournalCorruptError,
    RequestJournal,
    RequestStore,
    RetryExhaustedError,
    Server,
    SolutionCache,
    SolveRequest,
)
from repro.serving.cache import CachedSolution

ARTIFACTS = Path(__file__).resolve().parents[2] / "test-artifacts" / "serving"


@pytest.fixture(autouse=True)
def _journal_artifact(request, tmp_path):
    """Persist a failing scenario's journal files for the CI artifact upload."""

    yield
    report = getattr(request.node, "rep_call", None)
    if report is not None and report.failed:
        ARTIFACTS.mkdir(parents=True, exist_ok=True)
        safe = re.sub(r"[^\w.-]+", "_", request.node.nodeid)
        for wal in tmp_path.glob("*.wal*"):
            shutil.copy(wal, ARTIFACTS / f"{safe}__{wal.name}")


def _solution(seed: int) -> CachedSolution:
    rng = np.random.default_rng(seed)
    return CachedSolution(
        solution=rng.normal(size=(5, 5)),
        iterations=int(rng.integers(1, 50)),
        converged=True,
        deltas=[0.5, 0.1],
    )


def _server(clock, **kwargs):
    kwargs.setdefault("policy", BatchPolicy(max_batch_size=8, max_wait_seconds=1e9))
    kwargs.setdefault("cache", SolutionCache(capacity=64))
    kwargs.setdefault("sleep", clock.advance)
    return Server(clock=clock, **kwargs)


class TestJournalFile:
    def test_roundtrip_and_lag(self, tmp_path):
        journal = RequestJournal(tmp_path / "requests.wal", fsync_every=4)
        journal.append_claim(("k1",))
        journal.append_complete(("k1",), _solution(1))
        journal.append_fail(("k2",), "boom")
        assert journal.lag == 3  # below the fsync batch: buffered
        journal.sync()
        assert journal.lag == 0
        records = journal.replay()
        assert [(kind, key) for kind, key, _ in records] == [
            ("claim", ("k1",)),
            ("complete", ("k1",)),
            ("fail", ("k2",)),
        ]
        # The completed payload replays bitwise.
        assert records[1][2].solution.tobytes() == _solution(1).solution.tobytes()
        journal.close()

    def test_fsync_batching(self, tmp_path):
        journal = RequestJournal(tmp_path / "requests.wal", fsync_every=2)
        journal.append_claim(("a",))
        assert journal.lag == 1
        journal.append_claim(("b",))
        assert journal.lag == 0  # batch boundary fsynced
        assert journal.stats()["syncs"] == 1
        journal.close()

    def test_torn_tail_truncated_on_open(self, tmp_path):
        path = tmp_path / "requests.wal"
        journal = RequestJournal(path)
        journal.append_claim(("a",))
        journal.append_complete(("a",), _solution(2))
        journal.close()
        whole = path.stat().st_size
        torn_tail = b"\x40\x00\x00\x00\xde\xad\xbe\xef torn"
        with open(path, "ab") as handle:  # half a frame: the torn tail
            handle.write(torn_tail)
        reopened = RequestJournal(path)
        assert reopened.records_on_open == 2
        assert reopened.truncated_bytes == len(torn_tail)
        assert path.stat().st_size == whole  # tail cut in place
        assert len(reopened.replay()) == 2
        # Appending after truncation resumes cleanly.
        reopened.append_fail(("a",), "later")
        reopened.sync()
        assert len(reopened.replay()) == 3
        reopened.close()

    def test_mid_record_corruption_stops_scan(self, tmp_path):
        path = tmp_path / "requests.wal"
        journal = RequestJournal(path)
        journal.append_claim(("a",))
        journal.append_claim(("b",))
        journal.close()
        raw = bytearray(path.read_bytes())
        raw[-3] ^= 0xFF  # flip a byte inside the last record's payload
        path.write_bytes(raw)
        reopened = RequestJournal(path)
        assert reopened.records_on_open == 1  # bad-crc record and after: gone
        assert reopened.truncated_bytes > 0
        reopened.close()

    def test_non_journal_file_is_never_truncated(self, tmp_path):
        path = tmp_path / "precious.txt"
        path.write_text("not a journal")
        with pytest.raises(JournalCorruptError):
            RequestJournal(path)
        assert path.read_text() == "not a journal"

    def test_checkpoint_compacts_atomically(self, tmp_path):
        path = tmp_path / "requests.wal"
        journal = RequestJournal(path)
        for i in range(4):
            journal.append_claim((f"k{i}",))
            journal.append_complete((f"k{i}",), _solution(i))
        journal.append_fail(("k9",), "boom")
        written = journal.checkpoint([((f"k{i}",), _solution(i)) for i in range(2)])
        assert written == 2
        records = journal.replay()
        assert [kind for kind, _, _ in records] == ["complete", "complete"]
        assert journal.stats()["checkpoints"] == 1
        journal.close()

    def test_injected_torn_write_fails_journal_permanently(self, tmp_path):
        faults = FaultInjector(
            [FaultSpec(site=JOURNAL_WRITE, index=1, kind=TORN)]
        )
        journal = RequestJournal(tmp_path / "requests.wal", faults=faults)
        journal.append_claim(("a",))
        with pytest.raises(InjectedFault):
            journal.append_complete(("a",), _solution(3))
        assert journal.failed
        # The "process" died at the tear: further appends reach no disk.
        journal.append_fail(("a",), "after death")
        stats = journal.stats()
        assert stats["torn_writes"] == 1
        assert stats["dropped_after_failure"] == 1
        # The next open truncates the half-written frame and sees the prefix.
        recovered = RequestJournal(tmp_path / "requests.wal")
        assert recovered.truncated_bytes > 0
        assert [kind for kind, _, _ in recovered.replay()] == ["claim"]
        recovered.close()


class TestStoreRecovery:
    def test_recover_installs_last_state_per_key(self, tmp_path):
        journal = RequestJournal(tmp_path / "requests.wal")
        done = _solution(4)
        journal.append_claim(("done",))
        journal.append_complete(("done",), done)
        journal.append_claim(("failed",))
        journal.append_fail(("failed",), "boom")
        journal.append_claim(("orphan",))
        journal.sync()

        store = RequestStore()
        report = store.recover(journal)
        assert (report.records, report.completed, report.failed) == (5, 1, 1)
        assert report.orphaned == (("orphan",),)
        # Balanced exactly-once accounting over the keys on disk.
        assert report.completed + report.failed + len(report.orphaned) == 3
        assert store.peek(("done",)).solution.tobytes() == done.solution.tobytes()
        assert store.peek(("failed",)) is None  # reclaimable
        assert store.peek(("orphan",)) is None  # reclaimable, exactly once
        assert store.stats()["recovered"] == 1
        assert store.journal is journal

    def test_server_restart_replays_bitwise(self, small_geometry, harmonic_loops,
                                            fake_clock, tmp_path):
        path = tmp_path / "requests.wal"
        loops = harmonic_loops(3, seed=31)
        requests = [
            SolveRequest.create(small_geometry, loop, max_iterations=40)
            for loop in loops
        ]
        first = _server(fake_clock, journal=path)
        assert first.recovery.records == 0
        for request in requests:
            first.submit(request)
        before = first.drain_and_close()
        assert first.store.journal.stats()["checkpoints"] == 1

        # "Restart": a fresh server over the same journal file.
        second = _server(fake_clock, journal=path)
        assert second.recovery.completed == len(requests)
        assert second.recovery.orphaned == ()
        resubmitted = [
            SolveRequest.create(small_geometry, loop, max_iterations=40)
            for loop in loops
        ]
        for request in resubmitted:
            second.submit(request)
        after = second.drain()
        assert second.stats.fused_runs == 0      # everything replayed
        assert second.stats.store_hits == len(requests)
        for old, new in zip(requests, resubmitted):
            assert (
                after[new.request_id].solution.tobytes()
                == before[old.request_id].solution.tobytes()
            )

    def test_torn_write_orphans_claim_then_recovers_exactly_once(
        self, small_geometry, harmonic_loops, fake_clock, tmp_path
    ):
        path = tmp_path / "requests.wal"
        loop = harmonic_loops(1, seed=32)[0]
        # Journal call order for one request: claim (#0), complete (#1) —
        # the tear lands on the completion, as if the process died while
        # persisting the solved result.
        faults = FaultInjector(
            [FaultSpec(site=JOURNAL_WRITE, index=1, kind=TORN)],
            sleep=fake_clock.advance,
        )
        crashed = _server(fake_clock, faults=faults, journal=path)
        request = SolveRequest.create(small_geometry, loop, max_iterations=40)
        crashed.submit(request)
        future = crashed.future(request.request_id)
        assert crashed.drain() == {}
        error = future.exception()
        assert isinstance(error, RetryExhaustedError)
        assert isinstance(error.__cause__, InjectedFault)  # the torn write

        # Recovery sees the claim only: the key is orphaned, reclaimable.
        recovered = _server(fake_clock, journal=path)
        assert recovered.recovery.completed == 0
        assert recovered.recovery.orphaned != ()
        retry = SolveRequest.create(small_geometry, loop, max_iterations=40)
        recovered.submit(retry)
        results = recovered.drain()
        assert recovered.stats.fused_runs == 1  # solved exactly once more
        clean = _server(fake_clock)
        control = SolveRequest.create(small_geometry, loop, max_iterations=40)
        clean.submit(control)
        assert (
            results[retry.request_id].solution.tobytes()
            == clean.drain()[control.request_id].solution.tobytes()
        )
