"""Solution cache (LRU + quantization) and dynamic batcher policies."""

import numpy as np
import pytest

from repro.mosaic import MosaicGeometry
from repro.serving import (
    BatchPolicy,
    CachedSolution,
    DynamicBatcher,
    SolutionCache,
    SolveRequest,
)


def _request(geometry, value=0.0, **kwargs):
    size = geometry.global_grid().boundary_size
    return SolveRequest.create(geometry, np.full(size, value), **kwargs)


def _entry(value=1.0):
    return CachedSolution(solution=np.full((3, 3), value), iterations=7, converged=True)


class TestSolutionCache:
    def test_miss_then_hit(self, small_geometry):
        cache = SolutionCache(capacity=4)
        request = _request(small_geometry, 0.5)
        assert cache.get(request) is None
        cache.put(request, _entry())
        hit = cache.get(_request(small_geometry, 0.5))
        assert hit is not None and hit.iterations == 7
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_near_duplicate_hits_through_quantization(self, small_geometry):
        cache = SolutionCache(capacity=4, decimals=6)
        cache.put(_request(small_geometry, 0.5), _entry())
        assert cache.get(_request(small_geometry, 0.5 + 1e-9)) is not None
        assert cache.get(_request(small_geometry, 0.5 + 1e-3)) is None

    def test_key_separates_solve_parameters(self, small_geometry):
        cache = SolutionCache(capacity=8)
        cache.put(_request(small_geometry, 0.5, tol=1e-6), _entry())
        assert cache.get(_request(small_geometry, 0.5, tol=1e-9)) is None
        assert cache.get(_request(small_geometry, 0.5, max_iterations=7)) is None
        assert cache.get(_request(small_geometry, 0.5, init_mode="zero")) is None
        other = MosaicGeometry(subdomain_points=9, subdomain_extent=0.5, steps_x=4, steps_y=4)
        assert cache.get(_request(other, 0.5, tol=1e-6)) is not None  # equal geometry

    def test_lru_eviction_order(self, small_geometry):
        cache = SolutionCache(capacity=2)
        first = _request(small_geometry, 1.0)
        second = _request(small_geometry, 2.0)
        cache.put(first, _entry(1))
        cache.put(second, _entry(2))
        cache.get(first)                      # refresh: second is now LRU
        cache.put(_request(small_geometry, 3.0), _entry(3))
        assert cache.evictions == 1
        assert cache.get(_request(small_geometry, 2.0)) is None
        assert cache.get(_request(small_geometry, 1.0)) is not None

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            SolutionCache(capacity=0)
        with pytest.raises(ValueError):
            SolutionCache(decimals=-1)


class TestDynamicBatcher:
    def test_releases_on_full_batch(self, small_geometry, fake_clock):
        batcher = DynamicBatcher(
            BatchPolicy(max_batch_size=3, max_wait_seconds=100.0), clock=fake_clock
        )
        released = []
        for value in range(5):
            released += batcher.enqueue(_request(small_geometry, value))
        assert len(released) == 1 and len(released[0]) == 3
        assert batcher.queue_depth == 2

    def test_releases_on_deadline(self, small_geometry, fake_clock):
        batcher = DynamicBatcher(
            BatchPolicy(max_batch_size=100, max_wait_seconds=1.0), clock=fake_clock
        )
        batcher.enqueue(_request(small_geometry, 1.0))
        fake_clock.advance(0.5)
        batcher.enqueue(_request(small_geometry, 2.0))
        assert batcher.poll() == []
        fake_clock.advance(0.6)  # oldest has now waited 1.1s
        released = batcher.poll()
        assert len(released) == 1 and len(released[0]) == 2
        assert batcher.queue_depth == 0

    def test_groups_by_geometry(self, small_geometry, fake_clock):
        other = MosaicGeometry(subdomain_points=9, subdomain_extent=0.5, steps_x=6, steps_y=4)
        batcher = DynamicBatcher(
            BatchPolicy(max_batch_size=2, max_wait_seconds=100.0), clock=fake_clock
        )
        batcher.enqueue(_request(small_geometry, 1.0))
        batcher.enqueue(_request(other, 1.0))
        assert batcher.num_groups == 2
        released = batcher.enqueue(_request(small_geometry, 2.0))
        assert len(released) == 1
        assert all(r.geometry == small_geometry for r in released[0].requests)

    def test_flush_releases_everything(self, small_geometry, fake_clock):
        other = MosaicGeometry(subdomain_points=9, subdomain_extent=0.5, steps_x=6, steps_y=4)
        batcher = DynamicBatcher(
            BatchPolicy(max_batch_size=10, max_wait_seconds=100.0), clock=fake_clock
        )
        for value in range(3):
            batcher.enqueue(_request(small_geometry, value))
        batcher.enqueue(_request(other, 0.0))
        released = batcher.flush()
        assert sorted(len(b) for b in released) == [1, 3]
        assert batcher.queue_depth == 0 and batcher.num_groups == 0

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            BatchPolicy(max_batch_size=0)
        with pytest.raises(ValueError):
            BatchPolicy(max_wait_seconds=-1.0)
