"""Fused batch runner and worker pool: parity with individual solves.

The core guarantee of the serving layer: fusing many BVPs into one batched
run (and sharding that run across ranks) changes *only* the shape of the
solver calls — every request's iterate sequence, stopping decision and
assembled solution match a standalone ``MosaicFlowPredictor.run``.
"""

import numpy as np
import pytest

from repro.mosaic import (
    FDSubdomainSolver,
    MosaicFlowPredictor,
    SDNetSubdomainSolver,
    MosaicGeometry,
)
from repro.serving import FusedBatchRunner, WorkerPool


def _fd_factory(geometry):
    return FDSubdomainSolver(geometry.subdomain_grid(), method="direct")


class TestFusedRunner:
    def test_matches_individual_runs_exactly(self, small_geometry, harmonic_loops):
        loops = harmonic_loops(5, seed=11)
        runner = FusedBatchRunner(small_geometry, _fd_factory(small_geometry))
        outcomes = runner.run(loops, tols=1e-7, max_iterations=150)

        solver = _fd_factory(small_geometry)
        for loop, outcome in zip(loops, outcomes):
            reference = MosaicFlowPredictor(small_geometry, solver, batched=True).run(
                loop, max_iterations=150, tol=1e-7
            )
            # The FD solver is deterministic per boundary row, so the fused
            # run reproduces the standalone run bit for bit.
            assert outcome.iterations == reference.iterations
            assert outcome.converged == reference.converged
            np.testing.assert_array_equal(outcome.lattice_field, reference.lattice_field)
            np.testing.assert_array_equal(outcome.solution, reference.solution)
            assert outcome.deltas == pytest.approx(reference.deltas)

    def test_per_request_tolerances_and_budgets(self, small_geometry, harmonic_loops):
        loops = harmonic_loops(3, seed=5)
        runner = FusedBatchRunner(small_geometry, _fd_factory(small_geometry))
        tols = np.array([1e-2, 1e-8, 0.0])
        budgets = np.array([200, 200, 9])
        outcomes = runner.run(loops, tols, budgets)
        solver = _fd_factory(small_geometry)
        for loop, tol, budget, outcome in zip(loops, tols, budgets, outcomes):
            reference = MosaicFlowPredictor(small_geometry, solver, batched=True).run(
                loop, max_iterations=int(budget), tol=float(tol)
            )
            assert outcome.iterations == reference.iterations
            assert outcome.converged == reference.converged
            np.testing.assert_array_equal(outcome.solution, reference.solution)
        # the loose-tolerance request stopped earlier than the tight one
        assert outcomes[0].iterations < outcomes[1].iterations
        assert outcomes[2].iterations == 9 and not outcomes[2].converged

    def test_fuses_calls_across_requests(self, small_geometry, harmonic_loops):
        loops = harmonic_loops(4, seed=3)
        runner = FusedBatchRunner(small_geometry, _fd_factory(small_geometry))
        runner.run(loops, tols=0.0, max_iterations=8)
        # 8 iterations + 1 assembly chunk = 9 fused calls for all 4 requests,
        # versus 4 * 9 had each request been run alone.
        assert runner.predict_calls == 9
        assert runner.subdomains_solved >= 4 * small_geometry.num_subdomains

    def test_neural_solver_parity_within_tolerance(self, small_geometry, small_sdnet,
                                                   harmonic_loops):
        # An (untrained) SDNet exercises the batched-matmul path: results may
        # differ from standalone runs only by BLAS reduction order.
        loops = harmonic_loops(3, seed=7)
        runner = FusedBatchRunner(
            small_geometry, SDNetSubdomainSolver(small_sdnet)
        )
        outcomes = runner.run(loops, tols=0.0, max_iterations=8)
        solver = SDNetSubdomainSolver(small_sdnet)
        for loop, outcome in zip(loops, outcomes):
            reference = MosaicFlowPredictor(small_geometry, solver, batched=True).run(
                loop, max_iterations=8, tol=0.0
            )
            np.testing.assert_allclose(
                outcome.solution, reference.solution, rtol=1e-9, atol=1e-10
            )

    def test_input_validation(self, small_geometry):
        runner = FusedBatchRunner(small_geometry, _fd_factory(small_geometry))
        with pytest.raises(ValueError, match="shape"):
            runner.run(np.zeros((2, 5)))
        with pytest.raises(ValueError, match="max_iterations"):
            runner.run(
                np.zeros((1, small_geometry.global_grid().boundary_size)),
                max_iterations=0,
            )
        with pytest.raises(ValueError, match="boundary size"):
            bad = MosaicGeometry(subdomain_points=13, subdomain_extent=0.5,
                                 steps_x=4, steps_y=4)
            FusedBatchRunner(small_geometry, _fd_factory(bad))


class TestWorkerPool:
    @pytest.mark.parametrize("world_size", [1, 2, 3, 5])
    def test_sharding_preserves_results_and_order(
        self, small_geometry, harmonic_loops, world_size
    ):
        loops = harmonic_loops(5, seed=2)
        baseline = FusedBatchRunner(small_geometry, _fd_factory(small_geometry)).run(
            loops, tols=1e-6, max_iterations=100
        )
        pool = WorkerPool(small_geometry, _fd_factory, world_size=world_size)
        outcomes = pool.solve(loops, tols=1e-6, max_iterations=100)
        assert len(outcomes) == len(loops)
        for a, b in zip(outcomes, baseline):
            assert a.iterations == b.iterations
            np.testing.assert_array_equal(a.solution, b.solution)
        assert pool.predict_calls > 0 and pool.subdomains_solved > 0

    def test_empty_batch(self, small_geometry):
        pool = WorkerPool(small_geometry, _fd_factory, world_size=2)
        size = small_geometry.global_grid().boundary_size
        assert pool.solve(np.empty((0, size))) == []

    def test_world_size_validation(self, small_geometry):
        with pytest.raises(ValueError):
            WorkerPool(small_geometry, _fd_factory, world_size=0)
