"""Request validation and canonicalization."""

import numpy as np
import pytest

from repro.mosaic import MosaicGeometry
from repro.pde import HARMONIC_FUNCTIONS
from repro.serving import RequestValidationError, SolveRequest


class TestValidation:
    def test_canonicalizes_boundary_to_float64(self, small_geometry):
        size = small_geometry.global_grid().boundary_size
        request = SolveRequest.create(small_geometry, list(range(size)))
        assert request.boundary_loop.dtype == np.float64
        assert request.boundary_loop.flags["C_CONTIGUOUS"]
        assert request.boundary_loop.shape == (size,)

    def test_rejects_wrong_length(self, small_geometry):
        with pytest.raises(RequestValidationError, match="length"):
            SolveRequest.create(small_geometry, np.zeros(5))

    def test_rejects_non_finite(self, small_geometry):
        size = small_geometry.global_grid().boundary_size
        loop = np.zeros(size)
        loop[3] = np.nan
        with pytest.raises(RequestValidationError, match="finite"):
            SolveRequest.create(small_geometry, loop)

    def test_rejects_bad_parameters(self, small_geometry):
        size = small_geometry.global_grid().boundary_size
        loop = np.zeros(size)
        with pytest.raises(RequestValidationError):
            SolveRequest.create(small_geometry, loop, tol=-1.0)
        with pytest.raises(RequestValidationError):
            SolveRequest.create(small_geometry, loop, max_iterations=0)
        with pytest.raises(RequestValidationError):
            SolveRequest.create(small_geometry, loop, init_mode="random")
        with pytest.raises(RequestValidationError):
            SolveRequest.create(small_geometry, loop, check_interval=0)
        with pytest.raises(RequestValidationError):
            SolveRequest.create("not a geometry", loop)

    def test_boundary_is_a_frozen_private_copy(self, small_geometry):
        size = small_geometry.global_grid().boundary_size
        caller_buffer = np.linspace(0.0, 1.0, size)
        request = SolveRequest.create(small_geometry, caller_buffer)
        caller_buffer *= 2.0  # caller reuses its buffer after submitting
        assert np.allclose(request.boundary_loop, np.linspace(0.0, 1.0, size))
        with pytest.raises(ValueError):
            request.boundary_loop[0] = 7.0  # canonical form is read-only

    def test_unique_request_ids(self, small_geometry):
        size = small_geometry.global_grid().boundary_size
        a = SolveRequest.create(small_geometry, np.zeros(size))
        b = SolveRequest.create(small_geometry, np.zeros(size))
        assert a.request_id != b.request_id

    def test_from_function_samples_boundary(self, small_geometry):
        request = SolveRequest.from_function(
            small_geometry, HARMONIC_FUNCTIONS["linear"]
        )
        grid = small_geometry.global_grid()
        expected = grid.boundary_from_function(HARMONIC_FUNCTIONS["linear"])
        assert np.allclose(request.boundary_loop, expected)


class TestPackageExports:
    def test_serving_names_reexported_at_top_level(self):
        import repro
        import repro.serving as serving

        assert repro.Server is serving.Server
        assert repro.SolveRequest is serving.SolveRequest
        assert repro.serving is serving
        with pytest.raises(AttributeError):
            repro.not_a_real_name

    def test_every_serving_module_defines_all(self):
        import importlib

        for module in ("api", "batcher", "cache", "estimator", "fused",
                       "server", "stats", "workers"):
            mod = importlib.import_module(f"repro.serving.{module}")
            assert mod.__all__, module
            for name in mod.__all__:
                assert hasattr(mod, name)


class TestGrouping:
    def test_group_key_ignores_tolerance_and_budget(self, small_geometry):
        size = small_geometry.global_grid().boundary_size
        a = SolveRequest.create(small_geometry, np.zeros(size), tol=1e-4, max_iterations=10)
        b = SolveRequest.create(small_geometry, np.ones(size), tol=1e-9, max_iterations=500)
        assert a.group_key == b.group_key

    def test_group_key_separates_geometries_and_modes(self, small_geometry):
        other = MosaicGeometry(subdomain_points=9, subdomain_extent=0.5, steps_x=6, steps_y=4)
        size_a = small_geometry.global_grid().boundary_size
        size_b = other.global_grid().boundary_size
        a = SolveRequest.create(small_geometry, np.zeros(size_a))
        b = SolveRequest.create(other, np.zeros(size_b))
        c = SolveRequest.create(small_geometry, np.zeros(size_a), init_mode="zero")
        assert a.group_key != b.group_key
        assert a.group_key != c.group_key
