"""Perfmodel-backed batch-size recommendations."""

import pytest

from repro.perfmodel import GPU_SPECS
from repro.serving import ServingEstimator


@pytest.fixture()
def estimator():
    return ServingEstimator.for_platform("A100", hidden=64, trunk_layers=4)


class TestCostModel:
    def test_throughput_increases_with_batch(self, estimator):
        boundary, points = 36, 15
        small = estimator.throughput(1, boundary, points)
        large = estimator.throughput(1024, boundary, points)
        assert large > small

    def test_memory_limit_shrinks_with_query_points(self, estimator):
        boundary = 36
        few = estimator.max_subdomains_per_call(boundary, 15)
        many = estimator.max_subdomains_per_call(boundary, 1500)
        assert few > many >= 1

    def test_latency_monotone_in_batch(self, estimator):
        boundary, points = 36, 15
        latencies = [estimator.call_latency(n, boundary, points) for n in (1, 8, 64)]
        assert latencies == sorted(latencies)
        with pytest.raises(ValueError):
            estimator.call_latency(0, boundary, points)


class TestRecommendation:
    def test_respects_caps(self, estimator, small_geometry):
        unbounded = estimator.recommend_batch_size(small_geometry)
        assert unbounded >= 1
        capped = estimator.recommend_batch_size(small_geometry, max_requests=8)
        assert capped == min(8, unbounded)

    def test_sized_by_worst_case_fused_call(self, estimator, small_geometry):
        # Both call shapes constrain the batch: iteration calls (largest
        # placement phase, center-line queries) and dense-assembly calls
        # (all 9 subdomains/request here, the much larger interior queries).
        whole_assembly = estimator.recommend_batch_size(small_geometry)
        chunked_assembly = estimator.recommend_batch_size(
            small_geometry, assembly_batch=1
        )
        assert chunked_assembly >= whole_assembly
        boundary = small_geometry.subdomain_grid().boundary_size
        q_center = len(small_geometry.center_line_local_indices()[0])
        q_interior = len(small_geometry.interior_local_indices()[0])
        largest_phase = 4  # 3x3 anchor grid, phase (0, 0)
        expected = min(
            estimator.max_subdomains_per_call(boundary, q_center) // largest_phase,
            estimator.max_subdomains_per_call(boundary, q_interior)
            // small_geometry.num_subdomains,
        )
        assert whole_assembly == expected

    def test_latency_budget_shrinks_batch(self, small_geometry):
        # A slow platform with a tight budget must recommend smaller batches.
        slow = ServingEstimator(
            gpu=GPU_SPECS["V100"], hidden=256, trunk_layers=8, efficiency=0.01
        )
        loose = slow.recommend_batch_size(small_geometry, latency_budget_seconds=10.0)
        tight = slow.recommend_batch_size(small_geometry, latency_budget_seconds=1e-7)
        assert tight <= loose
        assert tight >= 1
