"""Cross-request mega-batching: fusion keys, bitwise parity, hot-path bugfixes.

The per-request (``mega_batch=False``) pipeline is the oracle throughout:
mega-batching only concatenates solver-call rows across fusion-compatible
batches, so every request's solution, iteration count and convergence deltas
must stay bitwise identical with it on.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.domains import CompositeDomain, CompositeMosaicGeometry
from repro.fd import Grid2D
from repro.models import SDNet
from repro.mosaic import FDSubdomainSolver, MosaicGeometry, SDNetSubdomainSolver
from repro.pde import HARMONIC_FUNCTIONS
from repro.serving import (
    CRASH,
    WORKER_SOLVE,
    BatchPolicy,
    DeadlineExceededError,
    FaultInjector,
    FaultSpec,
    FusedBatchRunner,
    MegaBatchExecutor,
    MegaSession,
    Server,
    ServingEstimator,
    SolutionCache,
    SolveRequest,
    solver_fusion_key,
)
from repro.serving.fused import drive
from repro.utils import seeded_rng

RECT = MosaicGeometry(subdomain_points=9, subdomain_extent=0.5, steps_x=4, steps_y=4)
WIDE = MosaicGeometry(subdomain_points=9, subdomain_extent=0.5, steps_x=6, steps_y=4)
L_SHAPE = CompositeMosaicGeometry(9, 0.5, CompositeDomain.l_shape(6, 6, 3, 3))
GEOMETRIES = (RECT, WIDE, L_SHAPE)


def _loops(geometry, count, seed):
    rng = seeded_rng(seed)
    names = sorted(HARMONIC_FUNCTIONS)
    loops = []
    for _ in range(count):
        weights = rng.normal(size=len(names))
        loops.append(
            geometry.boundary_from_function(
                lambda x, y, w=weights: sum(
                    wi * HARMONIC_FUNCTIONS[name](x, y)
                    for wi, name in zip(w, names)
                )
            )
        )
    return loops


def _server(clock, mega_batch=True, **kwargs):
    kwargs.setdefault("policy", BatchPolicy(max_batch_size=8, max_wait_seconds=1e9))
    kwargs.setdefault("cache", SolutionCache(capacity=64))
    return Server(clock=clock, mega_batch=mega_batch, **kwargs)


def _serve_stream(server, stream):
    ids = []
    for geometry, loop in stream:
        ids.append(
            server.submit(
                SolveRequest.create(geometry, loop, max_iterations=40)
            )
        )
    return ids, server.drain()


def _mixed_stream(per_geometry=2, seed=31):
    stream = []
    for offset, geometry in enumerate(GEOMETRIES):
        for loop in _loops(geometry, per_geometry, seed + offset):
            stream.append((geometry, loop))
    return stream


class TestFusionKeys:
    def test_fd_solvers_fuse_on_identical_configuration(self):
        grid = RECT.subdomain_grid()
        a = solver_fusion_key(FDSubdomainSolver(grid, method="direct"))
        b = solver_fusion_key(FDSubdomainSolver(grid, method="direct"))
        assert a == b and a[0] == "fd"
        other_grid = Grid2D(11, 11, extent=(0.5, 0.5))
        assert solver_fusion_key(FDSubdomainSolver(other_grid, method="direct")) != a

    def test_sdnet_solvers_fuse_only_on_the_same_model(self):
        model = SDNet(boundary_size=RECT.subdomain_grid().boundary_size,
                      hidden_size=16, trunk_layers=2, embedding_channels=(2,), rng=7)
        twin = SDNet(boundary_size=RECT.subdomain_grid().boundary_size,
                     hidden_size=16, trunk_layers=2, embedding_channels=(2,), rng=7)
        a = solver_fusion_key(SDNetSubdomainSolver(model))
        b = solver_fusion_key(SDNetSubdomainSolver(model))
        assert a == b and a[0] == "sdnet"
        assert solver_fusion_key(SDNetSubdomainSolver(twin)) != a

    def test_unknown_solver_types_never_fuse(self):
        class Mystery:
            def predict(self, boundaries, points):  # pragma: no cover
                return np.zeros((boundaries.shape[0], points.shape[0]))

        assert solver_fusion_key(Mystery()) is None


class TestMegaParity:
    def test_mixed_geometries_bitwise_identical_to_per_batch_path(self, fake_clock):
        stream = _mixed_stream(per_geometry=2, seed=31)
        mega_ids, mega_results = _serve_stream(_server(fake_clock), stream)
        ref_ids, ref_results = _serve_stream(
            _server(fake_clock, mega_batch=False), stream
        )
        assert len(mega_results) == len(stream)
        for mega_id, ref_id in zip(mega_ids, ref_ids):
            ours, theirs = mega_results[mega_id], ref_results[ref_id]
            assert ours.solution.tobytes() == theirs.solution.tobytes()
            assert ours.iterations == theirs.iterations
            assert ours.converged == theirs.converged
            assert ours.deltas == theirs.deltas

    def test_mega_stats_record_fusion(self, fake_clock):
        server = _server(fake_clock)
        _serve_stream(server, _mixed_stream(per_geometry=2, seed=33))
        stats = server.stats
        assert stats.mega_runs == 1
        assert stats.mega_calls >= 1
        assert stats.fused_runs == len(GEOMETRIES)  # per-batch accounting kept
        assert stats.mean_mega_occupancy == pytest.approx(len(GEOMETRIES))
        assert stats.mean_mega_rows > 0
        d = stats.as_dict()
        assert d["mega_runs"] == 1 and d["mega_calls"] == stats.mega_calls
        assert "mega-batch runs" in stats.report()

    def test_perfmodel_row_cap_chunks_calls_without_changing_results(self, fake_clock):
        class TightMegaRows(ServingEstimator):
            """Generous per-request batches, but one-row mega solver calls."""

            def recommend_mega_rows(self, boundary_size, q_points,
                                    latency_budget_seconds=None):
                return 1

            def recommend_batch_size(self, geometry, latency_budget_seconds=None,
                                     max_requests=None, assembly_batch=256):
                return 8

        estimator = TightMegaRows.for_platform("V100", hidden=512, trunk_layers=8)
        stream = _mixed_stream(per_geometry=1, seed=35)
        capped = _server(fake_clock, estimator=estimator)
        capped_ids, capped_results = _serve_stream(capped, stream)
        ref_ids, ref_results = _serve_stream(
            _server(fake_clock, mega_batch=False), stream
        )
        # One-row calls force maximal chunking: far more solver calls than runs.
        assert capped.stats.mega_runs >= 1
        assert capped.stats.mega_calls > capped.stats.mega_runs
        for capped_id, ref_id in zip(capped_ids, ref_ids):
            assert (
                capped_results[capped_id].solution.tobytes()
                == ref_results[ref_id].solution.tobytes()
            )

    def test_single_batch_takes_classic_path(self, fake_clock):
        server = _server(fake_clock)
        _serve_stream(server, [(RECT, loop) for loop in _loops(RECT, 2, seed=37)])
        assert server.stats.fused_runs == 1
        assert server.stats.mega_runs == 0
        assert server.stats.mega_calls == 0

    def test_distinct_models_do_not_cross_fuse(self, fake_clock):
        def model_for(rng):
            return SDNet(boundary_size=RECT.subdomain_grid().boundary_size,
                         hidden_size=16, trunk_layers=2,
                         embedding_channels=(2,), rng=rng)

        models = {id(RECT): model_for(1), id(WIDE): model_for(2)}

        def factory(geometry):
            return SDNetSubdomainSolver(models[id(geometry)])

        server = _server(fake_clock, solver_factory=factory)
        stream = [(RECT, _loops(RECT, 1, seed=39)[0]),
                  (WIDE, _loops(WIDE, 1, seed=40)[0])]
        _, results = _serve_stream(server, stream)
        assert len(results) == 2
        assert server.stats.mega_runs == 0  # incompatible solvers: classic path
        assert server.stats.fused_runs == 2

    def test_shared_sdnet_groups_fuse(self, fake_clock):
        model = SDNet(boundary_size=RECT.subdomain_grid().boundary_size,
                      hidden_size=16, trunk_layers=2, embedding_channels=(2,), rng=9)

        def factory(geometry):
            return SDNetSubdomainSolver(model)

        stream = [(geometry, _loops(geometry, 1, seed=41)[0])
                  for geometry in GEOMETRIES]
        mega = _server(fake_clock, solver_factory=factory)
        mega_ids, mega_results = _serve_stream(mega, stream)
        ref_ids, ref_results = _serve_stream(
            _server(fake_clock, solver_factory=factory, mega_batch=False), stream
        )
        assert mega.stats.mega_runs == 1
        for mega_id, ref_id in zip(mega_ids, ref_ids):
            assert (
                mega_results[mega_id].solution.tobytes()
                == ref_results[ref_id].solution.tobytes()
            )


class TestCoRelease:
    def test_compatible_queue_rides_a_size_released_batch(self, fake_clock):
        server = _server(
            fake_clock, policy=BatchPolicy(max_batch_size=2, max_wait_seconds=1e9)
        )
        rect_loops = _loops(RECT, 2, seed=43)
        wide_loop = _loops(WIDE, 1, seed=44)[0]
        server.submit(SolveRequest.create(RECT, rect_loops[0], max_iterations=40))
        server.submit(SolveRequest.create(WIDE, wide_loop, max_iterations=40))
        assert server.pending == 2  # both groups below size, no deadline
        # RECT's size trigger releases its batch; WIDE's queued request is
        # co-released to ride the same mega run instead of waiting forever.
        server.submit(SolveRequest.create(RECT, rect_loops[1], max_iterations=40))
        assert server.pending == 0
        assert server.stats.mega_runs == 1
        assert server.stats.fused_runs == 2
        assert len(server.drain()) == 3

    def test_co_release_results_match_reference(self, fake_clock):
        def run(mega_batch):
            server = _server(
                fake_clock,
                mega_batch=mega_batch,
                policy=BatchPolicy(max_batch_size=2, max_wait_seconds=1e9),
            )
            stream = [
                (RECT, _loops(RECT, 2, seed=45)[0]),
                (WIDE, _loops(WIDE, 1, seed=46)[0]),
                (RECT, _loops(RECT, 2, seed=45)[1]),
            ]
            ids, results = _serve_stream(server, stream)
            return [results[i].solution.tobytes() for i in ids]

        assert run(True) == run(False)


class TestRetryBackoffExpiry:
    """Bugfix: deadline fail-fast re-runs between retry attempts."""

    def test_expired_during_backoff_skips_the_retry_solve(self, fake_clock):
        faults = FaultInjector(
            [FaultSpec(site=WORKER_SOLVE, index=0, kind=CRASH)],
            sleep=fake_clock.advance,
        )
        server = _server(
            fake_clock, faults=faults, max_retries=2,
            retry_backoff_seconds=5.0, retry_backoff_cap=10.0,
            sleep=fake_clock.advance,
        )
        request = SolveRequest.create(
            RECT, _loops(RECT, 1, seed=47)[0],
            max_iterations=40, deadline_seconds=2.0,
        )
        server.submit(request)
        future = server.future(request.request_id)
        assert server.drain() == {}
        error = future.exception()
        assert isinstance(error, DeadlineExceededError)
        assert "during retry backoff" in str(error)
        # The 5s backoff outlived the 2s deadline: the second attempt must
        # never run, so exactly one worker call and zero fused runs.
        assert faults.calls(WORKER_SOLVE) == 1
        assert server.stats.fused_runs == 0
        assert server.stats.retries == 1
        assert server.stats.timeouts == 1
        assert server.stats.failures == 0

    def test_mega_retry_drops_expired_batches_and_serves_survivors(self, fake_clock):
        faults = FaultInjector(
            [FaultSpec(site=WORKER_SOLVE, index=0, kind=CRASH)],
            sleep=fake_clock.advance,
        )
        server = _server(
            fake_clock, faults=faults, max_retries=2,
            retry_backoff_seconds=5.0, retry_backoff_cap=10.0,
            sleep=fake_clock.advance,
        )
        tight = SolveRequest.create(
            RECT, _loops(RECT, 1, seed=48)[0],
            max_iterations=40, deadline_seconds=2.0,
        )
        patient = SolveRequest.create(
            WIDE, _loops(WIDE, 1, seed=49)[0], max_iterations=40
        )
        server.submit(tight)
        server.submit(patient)
        tight_future = server.future(tight.request_id)
        results = server.drain()
        assert list(results) == [patient.request_id]
        error = tight_future.exception()
        assert isinstance(error, DeadlineExceededError)
        assert "during retry backoff" in str(error)
        assert faults.calls(WORKER_SOLVE) == 2  # crash, then the retry
        assert server.stats.mega_runs == 1

        # The survivor's solution matches an unfaulted reference, bitwise.
        clean = _server(fake_clock, mega_batch=False)
        reference = SolveRequest.create(
            WIDE, _loops(WIDE, 1, seed=49)[0], max_iterations=40
        )
        clean.submit(reference)
        clean_results = clean.drain()
        assert (
            results[patient.request_id].solution.tobytes()
            == clean_results[reference.request_id].solution.tobytes()
        )


class TestQueueWaitStats:
    """Bugfix: queue waits are recorded only for live (non-expired) requests."""

    def test_expired_requests_do_not_skew_queue_waits(self, fake_clock):
        server = _server(fake_clock)
        doomed = SolveRequest.create(
            RECT, _loops(RECT, 2, seed=50)[0],
            max_iterations=40, deadline_seconds=2.0,
        )
        live = SolveRequest.create(
            RECT, _loops(RECT, 2, seed=50)[1], max_iterations=40
        )
        server.submit(doomed)
        server.submit(live)
        fake_clock.advance(3.0)  # doomed expires in the queue
        results = server.drain()
        assert list(results) == [live.request_id]
        waits = server.stats.registry.histogram("serving.queue_wait_seconds")
        assert waits.count == 1  # only the live request's wait was recorded
        assert float(waits.values()[0]) == pytest.approx(3.0)


class TestMegaExecutorProperty:
    """Hypothesis: the lockstep executor is bitwise-equal to sequential runs."""

    @staticmethod
    def _outcomes_sequential(geometry, loops):
        solver = FDSubdomainSolver(geometry.subdomain_grid(), method="direct")
        runner = FusedBatchRunner(geometry, solver)
        return runner.run(
            np.stack(loops),
            np.full(len(loops), 1e-6),
            np.full(len(loops), 12),
        )

    @staticmethod
    def _digest(outcomes):
        return [
            (o.solution.tobytes(), o.iterations, o.converged, tuple(o.deltas))
            for o in outcomes
        ]

    @given(
        counts=st.tuples(st.integers(0, 2), st.integers(0, 2), st.integers(0, 2)),
        cap=st.sampled_from([None, 1, 3, 8]),
        seed=st.integers(0, 10),
    )
    @settings(max_examples=20, deadline=None)
    def test_lockstep_execution_is_bitwise_identical(self, counts, cap, seed):
        solver = FDSubdomainSolver(RECT.subdomain_grid(), method="direct")
        populated = [
            (geometry, _loops(geometry, count, seed=seed * 7 + index))
            for index, (geometry, count) in enumerate(zip(GEOMETRIES, counts))
            if count > 0
        ]
        sessions = [
            MegaSession.begin(
                FusedBatchRunner(geometry, solver),
                np.stack(loops),
                np.full(len(loops), 1e-6),
                np.full(len(loops), 12),
            )
            for geometry, loops in populated
        ]
        executor = MegaBatchExecutor(
            solver, max_rows_for=None if cap is None else (lambda q: cap)
        )
        mega = executor.run(sessions)
        assert len(mega) == len(populated)
        if populated:
            assert executor.calls > 0 and executor.rows > 0
        for (geometry, loops), outcomes in zip(populated, mega):
            assert self._digest(outcomes) == self._digest(
                self._outcomes_sequential(geometry, loops)
            )
