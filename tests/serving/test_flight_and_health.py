"""Flight-recorder wiring, SLO health snapshots, and request-memory accounting.

Every scenario runs on the injectable fake clock (injected delays advance it
instead of sleeping), so retention decisions, SLO windows and latency
attribution are all deterministic.
"""

import numpy as np
import pytest

from repro.obs import (
    FlightRecorder,
    SLObjective,
    SLOTracker,
    disable_memory_accounting,
    disable_tracing,
    enable_memory_accounting,
    enable_tracing,
)
from repro.obs import memory as obs_memory
from repro.serving import (
    CRASH,
    DELAY,
    STORE_DELIVER,
    WORKER_SOLVE,
    BatchPolicy,
    DeadlineExceededError,
    FaultInjector,
    FaultSchedule,
    FaultSpec,
    RetryExhaustedError,
    Server,
    SolutionCache,
    SolveRequest,
)
from repro.mosaic.geometry import MosaicGeometry


@pytest.fixture(autouse=True)
def _obs_reset():
    yield
    disable_tracing()
    disable_memory_accounting()


def _server(clock, faults=None, **kwargs):
    kwargs.setdefault("policy", BatchPolicy(max_batch_size=8, max_wait_seconds=1e9))
    kwargs.setdefault("cache", SolutionCache(capacity=64))
    kwargs.setdefault("sleep", clock.advance)
    kwargs.setdefault("flight", FlightRecorder(min_samples=4, latency_quantile=90.0))
    return Server(clock=clock, faults=faults, **kwargs)


class TestFailureClassRetention:
    """Each injected failure class must retain an attributed flight record."""

    def test_retry_exhaustion_retains_failed_record(self, small_geometry,
                                                    harmonic_loops, fake_clock):
        enable_tracing()
        faults = FaultInjector(
            [FaultSpec(site=WORKER_SOLVE, index=i, kind=CRASH) for i in range(3)],
            sleep=fake_clock.advance,
        )
        server = _server(fake_clock, faults=faults, max_retries=2)
        request = SolveRequest.create(
            small_geometry, harmonic_loops(1, seed=31)[0],
            max_iterations=40, tenant="acme",
        )
        server.submit(request)
        future = server.future(request.request_id)
        server.drain()
        error = future.exception()
        assert isinstance(error, RetryExhaustedError)

        records = server.flight.records("failed")
        assert [r.request_id for r in records] == [request.request_id]
        record = records[0]
        assert record.tenant == "acme"
        assert record.attrs["attempts"] == 3
        assert record.attrs["fusion_key"] is not None
        assert "RetryExhaustedError" in record.error
        # The exception itself carries the record for callers downstream.
        assert error.flight_record is record
        # The span tree of the failing request was captured.
        assert "serving.batch" in record.span_tree()
        assert "serving.retry" in record.span_tree()

    def test_crash_then_success_retains_retried_record(self, small_geometry,
                                                       harmonic_loops, fake_clock):
        faults = FaultInjector(
            [FaultSpec(site=WORKER_SOLVE, index=0, kind=CRASH)],
            sleep=fake_clock.advance,
        )
        server = _server(fake_clock, faults=faults, max_retries=2)
        ids = [
            server.submit(SolveRequest.create(
                small_geometry, loop, max_iterations=40, tenant="acme"))
            for loop in harmonic_loops(2, seed=32)
        ]
        results = server.drain()
        assert sorted(results) == sorted(ids)
        records = server.flight.records("retried")
        assert sorted(r.request_id for r in records) == sorted(ids)
        assert all(r.attrs["attempts"] == 1 for r in records)
        assert all(r.attrs["batch_size"] == 2 for r in records)

    def test_straggler_solve_retains_straggler_record(self, small_geometry,
                                                      harmonic_loops, fake_clock):
        faults = FaultInjector(
            [FaultSpec(site=WORKER_SOLVE, index=0, kind=DELAY, delay_seconds=10.0)],
            sleep=fake_clock.advance,
        )
        server = _server(fake_clock, faults=faults)
        request = SolveRequest.create(
            small_geometry, harmonic_loops(1, seed=33)[0],
            max_iterations=40, deadline_seconds=5.0, tenant="acme",
        )
        server.submit(request)
        future = server.future(request.request_id)
        server.drain()
        assert isinstance(future.exception(), DeadlineExceededError)
        records = server.flight.records("straggler")
        assert [r.request_id for r in records] == [request.request_id]
        assert records[0].latency_seconds == pytest.approx(10.0)

    def test_fail_fast_expiry_retains_deadline_record(self, small_geometry,
                                                      harmonic_loops, fake_clock):
        server = _server(fake_clock)
        request = SolveRequest.create(
            small_geometry, harmonic_loops(1, seed=34)[0],
            max_iterations=40, deadline_seconds=2.0, tenant="acme",
        )
        server.submit(request)
        fake_clock.advance(3.0)
        server.drain()
        records = server.flight.records("deadline")
        assert [r.request_id for r in records] == [request.request_id]
        assert records[0].attrs["attempts"] == 0

    def test_slow_tail_is_retained_with_rolling_threshold(self, small_geometry,
                                                          harmonic_loops, fake_clock):
        # Eight fast requests seed the latency distribution; the delayed one
        # lands far past the rolling p90 and is retained as "slow".
        faults = FaultInjector(
            [FaultSpec(site=WORKER_SOLVE, index=1, kind=DELAY, delay_seconds=10.0)],
            sleep=fake_clock.advance,
        )
        server = _server(fake_clock, faults=faults)
        loops = harmonic_loops(8, seed=35)
        for loop in loops:
            server.submit(SolveRequest.create(
                small_geometry, loop, max_iterations=40))
        server.drain()
        assert server.flight.records() == []  # all fast, nothing retained
        slow = SolveRequest.create(
            small_geometry, harmonic_loops(1, seed=36)[0],
            max_iterations=40, tenant="tail",
        )
        server.submit(slow)
        server.drain()
        records = server.flight.records("slow")
        assert [r.request_id for r in records] == [slow.request_id]
        assert records[0].latency_seconds == pytest.approx(10.0)
        assert records[0].exemplars["latency_p99_seconds"] >= 0.0

    def test_mega_batch_occupancy_attribution(self, fake_clock):
        # Two fusion-compatible geometry groups crash once and retry as one
        # mega run: the retained records carry occupancy 2 + the fusion key.
        rect = MosaicGeometry(subdomain_points=9, subdomain_extent=0.5,
                              steps_x=4, steps_y=4)
        wide = MosaicGeometry(subdomain_points=9, subdomain_extent=0.5,
                              steps_x=6, steps_y=4)
        faults = FaultInjector(
            [FaultSpec(site=WORKER_SOLVE, index=0, kind=CRASH)],
            sleep=fake_clock.advance,
        )
        server = _server(
            fake_clock, faults=faults, max_retries=2,
            policy=BatchPolicy(max_batch_size=1, max_wait_seconds=1e9),
        )
        rng = np.random.default_rng(0)
        ids = []
        for geometry in (rect, wide):
            loop = rng.normal(size=geometry.global_boundary_size)
            ids.append(server.submit_async(SolveRequest.create(
                geometry, loop, max_iterations=30, tenant="acme")).request_id)
        results = server.drain()
        assert sorted(results) == sorted(ids)
        records = server.flight.records("retried")
        assert sorted(r.request_id for r in records) == sorted(ids)
        keys = {r.attrs["fusion_key"] for r in records}
        assert len(keys) == 1 and None not in keys
        assert all(r.attrs["mega_occupancy"] == 2 for r in records)

    def test_flight_counters_exported(self, small_geometry, harmonic_loops,
                                      fake_clock):
        server = _server(fake_clock)
        request = SolveRequest.create(
            small_geometry, harmonic_loops(1, seed=37)[0],
            max_iterations=40, deadline_seconds=1.0,
        )
        server.submit(request)
        fake_clock.advance(2.0)
        server.drain()
        snap = server.stats.registry.snapshot()
        assert snap["serving.flight_records{reason=deadline}"]["value"] == 1


class TestDeterminism:
    def test_retained_set_is_identical_across_seeded_runs(self, small_geometry,
                                                          harmonic_loops, fake_clock):
        loops = harmonic_loops(4, seed=38)

        def run_once():
            clock = type(fake_clock)()
            faults = FaultInjector(
                FaultSchedule.seeded(3, num_faults=2,
                                     sites=(WORKER_SOLVE, STORE_DELIVER),
                                     max_index=3),
                sleep=clock.advance,
            )
            server = _server(clock, faults=faults, max_retries=4)
            requests = [
                SolveRequest.create(small_geometry, loop, max_iterations=40,
                                    request_id=f"req-{i}", tenant="acme")
                for i, loop in enumerate(loops)
            ]
            futures = [server.submit_async(request) for request in requests]
            server.drain()
            retained = [
                (r.request_id, r.reason, r.attrs["attempts"])
                for r in server.flight.records()
            ]
            outcomes = {}
            for request, future in zip(requests, futures):
                if future.exception(timeout=0) is None:
                    outcomes[request.request_id] = (
                        future.result(timeout=0).solution.tobytes()
                    )
            return server, retained, outcomes

        server_a, retained_a, outcomes_a = run_once()
        server_b, retained_b, outcomes_b = run_once()
        assert retained_a == retained_b
        assert outcomes_a == outcomes_b
        assert retained_a  # the seeded schedule does retain something

    def test_retained_request_replays_bitwise_from_store(self, small_geometry,
                                                         harmonic_loops, fake_clock):
        # A retained (retried-but-successful) trace stays replayable: an
        # exact duplicate resolves from the request store with the identical
        # solution bytes — the flight record points at reproducible data.
        faults = FaultInjector(
            [FaultSpec(site=WORKER_SOLVE, index=0, kind=CRASH)],
            sleep=fake_clock.advance,
        )
        server = _server(fake_clock, faults=faults, max_retries=2)
        loop = harmonic_loops(1, seed=39)[0]
        original = SolveRequest.create(small_geometry, loop, max_iterations=40)
        server.submit(original)
        results = server.drain()
        record = server.flight.records("retried")[0]
        assert record.request_id == original.request_id

        replay = SolveRequest.create(small_geometry, loop, max_iterations=40)
        server.submit(replay)
        replayed = server.drain()
        assert server.stats.store_hits == 1
        assert (
            replayed[replay.request_id].solution.tobytes()
            == results[original.request_id].solution.tobytes()
        )


class TestHealth:
    def test_health_snapshot_shape(self, small_geometry, harmonic_loops, fake_clock):
        acct = enable_memory_accounting()
        server = _server(fake_clock)
        for loop in harmonic_loops(3, seed=40):
            server.submit(SolveRequest.create(
                small_geometry, loop, max_iterations=40))
        server.drain()
        health = server.health()
        assert health["status"] == "ok"
        assert health["alerts"] == []
        assert "availability" in health["slo"]
        assert health["pending"] == 0
        assert health["bytes_per_request"] > 0
        assert health["memory"]["total_allocated_bytes"] > 0
        assert health["flight"]["retained"] == 0
        # Published gauges reach the exporters through the stats registry.
        snap = server.stats.registry.snapshot()
        assert snap["serving.bytes_per_request"]["value"] == (
            health["bytes_per_request"]
        )
        assert any(key.startswith("slo.attainment{") for key in snap)
        assert any(key.startswith("memory.live_bytes{") for key in snap)

    def test_health_burns_on_sustained_failures(self, small_geometry,
                                                harmonic_loops, fake_clock):
        faults = FaultInjector(
            [FaultSpec(site=WORKER_SOLVE, index=i, kind=CRASH) for i in range(12)],
            sleep=fake_clock.advance,
        )
        slo = SLOTracker(
            objectives=[SLObjective(name="availability", target=0.9)],
            windows=(60.0,), clock=fake_clock,
        )
        server = _server(fake_clock, faults=faults, max_retries=0, slo=slo)
        for loop in harmonic_loops(3, seed=41):
            server.submit(SolveRequest.create(
                small_geometry, loop, max_iterations=40))
            server.drain()
        health = server.health()
        assert health["status"] == "burning"
        assert health["alerts"][0]["objective"] == "availability"
        assert health["slo"]["availability"]["burning"] is True

    def test_request_payload_accounting_balances(self, small_geometry,
                                                 harmonic_loops, fake_clock):
        # Payload bytes are charged at admission and released on resolution
        # — successes, failures and deadline expiries all return to zero.
        acct = enable_memory_accounting()
        faults = FaultInjector(
            [FaultSpec(site=WORKER_SOLVE, index=0, kind=CRASH)],
            sleep=fake_clock.advance,
        )
        server = _server(fake_clock, faults=faults, max_retries=0)
        loops = harmonic_loops(3, seed=42)
        server.submit(SolveRequest.create(  # fails (crash, no retries)
            small_geometry, loops[0], max_iterations=40))
        server.submit(SolveRequest.create(  # expires before dispatch
            small_geometry, loops[1], max_iterations=40, deadline_seconds=1.0))
        fake_clock.advance(2.0)
        server.submit(SolveRequest.create(  # succeeds
            small_geometry, loops[2], max_iterations=40))
        server.drain()
        assert acct.live_bytes(obs_memory.REQUEST_PAYLOADS) == 0
        assert acct.allocated_bytes(obs_memory.REQUEST_PAYLOADS) == (
            3 * loops[0].nbytes
        )
