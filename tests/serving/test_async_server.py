"""Async pipeline behaviour: futures, parity with the sync path, admission.

The async server (dispatcher thread + solve-worker pool) must be a pure
performance feature: for the same set of requests it returns bit-for-bit the
solutions the synchronous submit/drain path returns, under any thread
interleaving, while admission control keeps the queue depth bounded.
"""

import threading

import numpy as np
import pytest

from repro.domains import CompositeDomain, CompositeMosaicGeometry
from repro.serving import (
    BatchPolicy,
    QuotaExceededError,
    Server,
    ServingEstimator,
    SolutionCache,
    SolveRequest,
    TenantQuota,
)


@pytest.fixture(scope="module")
def l_geometry():
    return CompositeMosaicGeometry(9, 0.5, CompositeDomain.l_shape(6, 6, 3, 3))


def _mixed_loops(small_geometry, l_geometry, harmonic_loops, seed):
    """Mixed rect + L-shape BVPs: list of (geometry, boundary_loop)."""

    bvps = [(small_geometry, loop) for loop in harmonic_loops(3, seed=seed)]
    for weights in ((1.0, 0.5, -0.25), (-0.5, 2.0, 0.75)):
        loop = l_geometry.boundary_from_function(
            lambda x, y, w=weights: w[0] * (x * x - y * y) + w[1] * x * y + w[2] * x
        )
        bvps.append((l_geometry, loop))
    return bvps


def _sync_reference(bvps):
    """Solve each BVP on a fresh sync server; returns solution bytes per index."""

    server = Server(
        policy=BatchPolicy(max_batch_size=4, max_wait_seconds=1e9),
        cache=SolutionCache(capacity=64),
    )
    requests = [
        SolveRequest.create(geometry, loop, max_iterations=40)
        for geometry, loop in bvps
    ]
    for request in requests:
        server.submit(request)
    results = server.drain()
    return [
        (results[r.request_id].solution.tobytes(), results[r.request_id].iterations)
        for r in requests
    ]


class TestAsyncParity:
    def test_async_matches_sync_bitwise(self, small_geometry, l_geometry,
                                        harmonic_loops):
        bvps = _mixed_loops(small_geometry, l_geometry, harmonic_loops, seed=21)
        reference = _sync_reference(bvps)
        with Server(
            policy=BatchPolicy(max_batch_size=4, max_wait_seconds=0.002),
            cache=SolutionCache(capacity=64),
            async_workers=2,
        ) as server:
            assert server.running
            futures = [
                server.submit_async(
                    SolveRequest.create(geometry, loop, max_iterations=40)
                )
                for geometry, loop in bvps
            ]
            results = [future.result(timeout=120) for future in futures]
        assert not server.running
        for result, (ref_bytes, ref_iterations) in zip(results, reference):
            assert result.solution.tobytes() == ref_bytes
            assert result.iterations == ref_iterations

    def test_concurrent_submitters_bitwise_and_exactly_once(
        self, small_geometry, l_geometry, harmonic_loops
    ):
        bvps = _mixed_loops(small_geometry, l_geometry, harmonic_loops, seed=22)
        reference = _sync_reference(bvps)
        num_threads = 6
        failures = []
        with Server(
            policy=BatchPolicy(max_batch_size=4, max_wait_seconds=0.002),
            cache=SolutionCache(capacity=64),
            async_workers=3,
        ) as server:

            def submitter(thread_index):
                try:
                    indexed = []
                    for k in range(len(bvps)):
                        idx = (thread_index + k) % len(bvps)
                        geometry, loop = bvps[idx]
                        indexed.append(
                            (idx, server.submit_async(
                                SolveRequest.create(geometry, loop, max_iterations=40)
                            ))
                        )
                    for idx, future in indexed:
                        result = future.result(timeout=120)
                        assert result.solution.tobytes() == reference[idx][0]
                        assert result.iterations == reference[idx][1]
                except Exception as exc:  # noqa: BLE001 - collected for the main thread
                    failures.append(exc)

            threads = [
                threading.Thread(target=submitter, args=(t,))
                for t in range(num_threads)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert failures == []
        # Exactly-once: 30 submissions of 5 canonical BVPs claim and solve
        # each key a single time, no matter the interleaving.
        assert server.stats.requests == num_threads * len(bvps)
        assert server.store.stats()["claims"] == len(bvps)
        assert server.stats.solved_requests == len(bvps)

    def test_drain_collects_async_completions(self, small_geometry, harmonic_loops):
        with Server(
            policy=BatchPolicy(max_batch_size=2, max_wait_seconds=0.002),
            cache=SolutionCache(capacity=64),
            async_workers=2,
        ) as server:
            ids = [
                server.submit(SolveRequest.create(small_geometry, loop,
                                                  max_iterations=40))
                for loop in harmonic_loops(4, seed=23)
            ]
            results = server.drain()
        assert sorted(results) == sorted(ids)
        assert server.pending == 0


class TestFuturesApi:
    def test_result_timeout_and_callbacks(self, small_geometry, harmonic_loops,
                                          fake_clock):
        server = Server(
            policy=BatchPolicy(max_batch_size=8, max_wait_seconds=1e9),
            cache=SolutionCache(capacity=64),
            clock=fake_clock,
        )
        request = SolveRequest.create(
            small_geometry, harmonic_loops(1, seed=24)[0], max_iterations=40
        )
        future = server.submit_async(request)
        assert not future.done()
        assert server.future(request.request_id) is future
        with pytest.raises(TimeoutError, match="still pending"):
            future.result(timeout=0.01)
        seen = []
        future.add_done_callback(lambda f: seen.append(f.request_id))
        server.drain()
        assert future.done()
        assert seen == [request.request_id]
        assert future.exception() is None
        assert future.result(timeout=0).request_id == request.request_id
        # Callbacks registered after resolution run immediately.
        future.add_done_callback(lambda f: seen.append("late"))
        assert seen == [request.request_id, "late"]
        # Resolved futures are forgotten at drain; callers keep their handle.
        assert server.future(request.request_id) is None

    def test_store_replay_across_drains(self, small_geometry, harmonic_loops,
                                        fake_clock):
        server = Server(
            policy=BatchPolicy(max_batch_size=8, max_wait_seconds=1e9),
            cache=None,  # isolate the store: no LRU in front of it
            clock=fake_clock,
        )
        loop = harmonic_loops(1, seed=25)[0]
        first = SolveRequest.create(small_geometry, loop, max_iterations=40)
        server.submit(first)
        solved = server.drain()[first.request_id]
        again = SolveRequest.create(small_geometry, loop, max_iterations=40)
        future = server.submit_async(again)
        # Answered at submit from the DONE store entry: no queue, no solve.
        assert future.done()
        replay = future.result(timeout=0)
        assert replay.cache_hit
        assert replay.solution.tobytes() == solved.solution.tobytes()
        assert server.store.stats()["replays"] == 1
        assert server.stats.store_hits == 1
        assert server.stats.fused_runs == 1


class TestAdmissionControl:
    def test_sync_quota_rejection_and_release(self, small_geometry, harmonic_loops,
                                              fake_clock):
        server = Server(
            policy=BatchPolicy(max_batch_size=8, max_wait_seconds=1e9),
            cache=None,
            clock=fake_clock,
            quotas=TenantQuota(max_pending=2),
        )
        loops = harmonic_loops(3, seed=26)
        for loop in loops[:2]:
            server.submit(SolveRequest.create(small_geometry, loop, max_iterations=40))
        with pytest.raises(QuotaExceededError, match="over its admission quota"):
            server.submit(
                SolveRequest.create(small_geometry, loops[2], max_iterations=40)
            )
        assert server.stats.rejections == 1
        assert server.pending == 2
        server.drain()
        # Completion released the admitted slots: the shed BVP is admitted now.
        retry = SolveRequest.create(small_geometry, loops[2], max_iterations=40)
        server.submit(retry)
        assert retry.request_id in server.drain()

    def test_async_quota_bounds_queue_depth(self, small_geometry, harmonic_loops,
                                            fake_clock):
        limit = 3
        server = Server(
            policy=BatchPolicy(max_batch_size=64, max_wait_seconds=1e9),
            cache=None,
            clock=fake_clock,
            quotas=TenantQuota(max_pending=limit),
        )
        futures = [
            server.submit_async(
                SolveRequest.create(small_geometry, loop, max_iterations=40)
            )
            for loop in harmonic_loops(8, seed=27)
        ]
        assert server.pending <= limit
        shed = [f for f in futures if f.done()]
        assert len(shed) == len(futures) - limit
        for future in shed:
            assert isinstance(future.exception(), QuotaExceededError)
        assert server.stats.rejections == len(shed)
        results = server.drain()
        admitted = [f for f in futures if f not in shed]
        assert sorted(results) == sorted(f.request_id for f in admitted)

    def test_quotas_are_per_tenant(self, small_geometry, harmonic_loops, fake_clock):
        server = Server(
            policy=BatchPolicy(max_batch_size=64, max_wait_seconds=1e9),
            cache=None,
            clock=fake_clock,
            quotas={"metered": TenantQuota(max_pending=1)},
        )
        loops = harmonic_loops(4, seed=28)
        server.submit(
            SolveRequest.create(small_geometry, loops[0], max_iterations=40,
                                tenant="metered")
        )
        metered = server.submit_async(
            SolveRequest.create(small_geometry, loops[1], max_iterations=40,
                                tenant="metered")
        )
        assert isinstance(metered.exception(timeout=0), QuotaExceededError)
        # Tenants without a quota entry (and no default) are unlimited.
        for loop in loops[2:]:
            server.submit(
                SolveRequest.create(small_geometry, loop, max_iterations=40,
                                    tenant="unmetered")
            )
        assert len(server.drain()) == 3

    def test_backlog_quota_uses_perfmodel(self, small_geometry, harmonic_loops,
                                          fake_clock):
        # An absurdly slow platform makes one request exceed the backlog
        # budget, so the perfmodel-driven limit collapses to a single slot.
        estimator = ServingEstimator.for_platform(
            "V100", hidden=512, trunk_layers=8, efficiency=1e-9
        )
        server = Server(
            policy=BatchPolicy(max_batch_size=64, max_wait_seconds=1e9),
            cache=None,
            clock=fake_clock,
            estimator=estimator,
            quotas=TenantQuota(max_backlog_seconds=1.0),
        )
        loops = harmonic_loops(2, seed=29)
        server.submit(SolveRequest.create(small_geometry, loops[0], max_iterations=40))
        with pytest.raises(QuotaExceededError):
            server.submit(
                SolveRequest.create(small_geometry, loops[1], max_iterations=40)
            )
        assert server.stats.rejections == 1
