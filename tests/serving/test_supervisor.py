"""Worker supervision, circuit breakers, memory shedding, graceful shutdown.

Every scenario runs on the injectable fake clock: heartbeat timeouts,
restart backoff and breaker cool-downs advance it deterministically, and
every recovery is checked bitwise against an unfaulted control server.
"""

import re
import time
from pathlib import Path

import pytest

from repro.obs import disable_tracing, enable_tracing
from repro.obs.memory import (
    MemoryAccountant,
    disable_memory_accounting,
    enable_memory_accounting,
)
from repro.serving import (
    CRASH,
    DELAY,
    DROP,
    WORKER_DEATH,
    WORKER_HEARTBEAT,
    WORKER_SOLVE,
    BatchPolicy,
    BreakerBoard,
    BreakerPolicy,
    CircuitBreaker,
    CircuitOpenError,
    FaultInjector,
    FaultSchedule,
    FaultSpec,
    MemoryPressureError,
    RetryExhaustedError,
    Server,
    ServerClosedError,
    SolutionCache,
    SolveRequest,
    TenantQuota,
    WorkerSupervisor,
)

ARTIFACTS = Path(__file__).resolve().parents[2] / "test-artifacts" / "serving"


@pytest.fixture(autouse=True)
def _trace_artifact(request):
    """Trace every scenario; keep the Chrome trace if the test fails."""

    tracer = enable_tracing()
    try:
        yield tracer
    finally:
        disable_tracing()
        report = getattr(request.node, "rep_call", None)
        if report is not None and report.failed and tracer.span_count():
            ARTIFACTS.mkdir(parents=True, exist_ok=True)
            safe = re.sub(r"[^\w.-]+", "_", request.node.nodeid)
            tracer.write_chrome_trace(ARTIFACTS / f"{safe}.json")


def _server(clock, faults=None, **kwargs):
    kwargs.setdefault("policy", BatchPolicy(max_batch_size=8, max_wait_seconds=1e9))
    kwargs.setdefault("cache", SolutionCache(capacity=64))
    kwargs.setdefault("sleep", clock.advance)
    return Server(clock=clock, faults=faults, **kwargs)


def _requests(geometry, loops, **kwargs):
    return [
        SolveRequest.create(geometry, loop, max_iterations=40, **kwargs)
        for loop in loops
    ]


# ---------------------------------------------------------------------------
# WorkerSupervisor unit behaviour
# ---------------------------------------------------------------------------


class TestWorkerSupervisor:
    def test_heartbeats_keep_a_flight_alive(self, fake_clock):
        clock = fake_clock
        sup = WorkerSupervisor(clock=clock, heartbeat_timeout_seconds=30.0)
        sup.begin("w0", ["r1", "r2"])
        clock.advance(25.0)
        assert sup.check() == []  # 25s gap: inside the timeout
        sup.heartbeat("w0")
        clock.advance(25.0)
        assert sup.check() == []  # refreshed at t=25, now t=50: 25s gap again
        clock.advance(10.0)
        stale = sup.check()  # 35s gap: stale
        assert [f.worker for f in stale] == ["w0"]
        assert stale[0].requests == ["r1", "r2"]
        assert sup.hangs == 1
        assert sup.active_flights() == []  # popped: flagged at most once

    def test_ended_flight_is_never_flagged(self, fake_clock):
        clock = fake_clock
        sup = WorkerSupervisor(clock=clock, heartbeat_timeout_seconds=30.0)
        sup.begin("w0", ["r1"])
        sup.end("w0")
        clock.advance(1000.0)
        assert sup.check() == []
        assert sup.hangs == 0

    def test_restart_backoff_doubles_to_cap(self, fake_clock):
        clock = fake_clock
        sup = WorkerSupervisor(
            clock=clock, restart_backoff_seconds=1.0, restart_backoff_cap=4.0
        )
        assert sup.record_death("w0") == 1.0
        assert sup.record_death("w0") == 2.0
        assert sup.record_death("w0") == 4.0
        assert sup.record_death("w0") == 4.0  # capped
        assert sup.deaths == 4
        assert sup.restart_gate_remaining() == 4.0
        clock.advance(4.0)
        assert sup.restart_gate_remaining() == 0.0

    def test_restart_budget_exhausts(self, fake_clock):
        clock = fake_clock
        sup = WorkerSupervisor(clock=clock, max_restarts=2)
        sup.record_death("w0")
        sup.record_death("w1")
        assert not sup.exhausted  # budget: restarts may reach max_restarts
        sup.record_death("w0")
        assert sup.exhausted
        assert sup.snapshot()["exhausted"] is True
        assert sup.snapshot()["restarts_by_worker"] == {"w0": 2, "w1": 1}


# ---------------------------------------------------------------------------
# CircuitBreaker / BreakerBoard unit behaviour
# ---------------------------------------------------------------------------


class TestCircuitBreaker:
    def _breaker(self, fake_clock, **policy):
        clock = fake_clock
        policy.setdefault("failure_threshold", 3)
        policy.setdefault("reset_timeout_seconds", 10.0)
        return CircuitBreaker(BreakerPolicy(**policy), clock=clock), clock

    def test_trips_on_consecutive_failures_only(self, fake_clock):
        breaker, _ = self._breaker(fake_clock)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()  # resets the consecutive count
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.opens == 1

    def test_open_rejects_until_cooldown_then_probes(self, fake_clock):
        breaker, clock = self._breaker(fake_clock)
        for _ in range(3):
            breaker.record_failure()
        assert not breaker.allow()
        assert breaker.rejections == 1
        clock.advance(10.0)
        assert breaker.state == "half_open"
        assert breaker.allow()        # the single probe
        assert not breaker.allow()    # probe budget spent
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.closes == 1

    def test_failed_probe_reopens_with_fresh_cooldown(self, fake_clock):
        breaker, clock = self._breaker(fake_clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.opens == 2
        clock.advance(9.0)
        assert not breaker.allow()  # cool-down restarted at the failed probe
        clock.advance(1.0)
        assert breaker.allow()

    def test_board_is_per_key(self, fake_clock):
        clock = fake_clock
        board = BreakerBoard(BreakerPolicy(failure_threshold=1), clock=clock)
        board.get("a").record_failure()
        assert board.get("a") is board.get("a")
        assert board.get("a").state == "open"
        assert board.get("b").state == "closed"
        assert len(board) == 2
        states = board.snapshot()["states"]
        assert states == {"closed": 1, "open": 1, "half_open": 0}


# ---------------------------------------------------------------------------
# Server integration: deaths, hangs, heartbeat loss
# ---------------------------------------------------------------------------


class TestSupervisedServer:
    def test_seeded_worker_deaths_recover_bitwise(self, small_geometry,
                                                  harmonic_loops, fake_clock):
        loops = harmonic_loops(6, seed=41)
        schedule = FaultSchedule.seeded(
            seed=7, num_faults=2, sites=(WORKER_DEATH,), max_index=2
        )
        assert all(spec.kind == "death" for spec in schedule)
        faults = FaultInjector(schedule, sleep=fake_clock.advance)
        server = _server(fake_clock, faults=faults, supervisor=True)
        requests = _requests(small_geometry, loops)
        for request in requests:
            server.submit(request)
        results = server.drain()
        assert len(results) == len(requests)
        assert server.supervisor.deaths >= 1
        assert server.stats.requeues >= 1

        clean_clock = type(fake_clock)()
        clean = _server(clean_clock)
        controls = _requests(small_geometry, loops)
        for request in controls:
            clean.submit(request)
        clean_results = clean.drain()
        for faulted, control in zip(requests, controls):
            assert (
                results[faulted.request_id].solution.tobytes()
                == clean_results[control.request_id].solution.tobytes()
            )

    def test_hung_worker_is_requeued_and_deduped(self, small_geometry,
                                                 harmonic_loops, fake_clock):
        loop = harmonic_loops(1, seed=42)[0]
        state = {}

        def stall(seconds):
            # The injected delay plays a worker stuck inside a solve: time
            # passes and the dispatcher's supervision sweep runs "meanwhile".
            fake_clock.advance(seconds)
            state["server"].check_workers()

        faults = FaultInjector(
            [FaultSpec(site=WORKER_SOLVE, index=0, kind=DELAY, delay_seconds=60.0)],
            sleep=stall,
        )
        supervisor = WorkerSupervisor(clock=fake_clock, heartbeat_timeout_seconds=30.0)
        server = _server(fake_clock, faults=faults, supervisor=supervisor)
        state["server"] = server
        request = _requests(small_geometry, [loop])[0]
        server.submit(request)
        results = server.drain()

        assert request.request_id in results
        assert supervisor.hangs == 1
        assert server.stats.requeues == 1
        # The hung worker finished anyway, so the requeued copy's delivery is
        # absorbed idempotently: no double resolution.
        assert server.store.stats()["duplicate_deliveries"] == 1

        clean = _server(type(fake_clock)())
        control = _requests(small_geometry, [loop])[0]
        clean.submit(control)
        assert (
            results[request.request_id].solution.tobytes()
            == clean.drain()[control.request_id].solution.tobytes()
        )

    @pytest.mark.parametrize("drop_heartbeats", [True, False])
    def test_heartbeat_loss_is_a_hang_heartbeats_are_not(
        self, small_geometry, harmonic_loops, fake_clock, drop_heartbeats
    ):
        # A worker retrying with 6s backoffs against a 10s heartbeat timeout:
        # with its heartbeats delivered it is never flagged; with them
        # dropped (a partition — the worker itself is healthy) the same
        # timeline trips the supervisor at t=12 and the work is requeued.
        # Either way the result must be the bitwise same.
        loop = harmonic_loops(1, seed=43)[0]
        clock = type(fake_clock)()
        state = {}

        def backoff(seconds):
            clock.advance(seconds)
            state["server"].check_workers()

        specs = [
            FaultSpec(site=WORKER_SOLVE, index=i, kind=CRASH) for i in range(3)
        ]
        if drop_heartbeats:
            specs.append(
                FaultSpec(site=WORKER_HEARTBEAT, index=0, kind=DROP, repeat=True)
            )
        supervisor = WorkerSupervisor(clock=clock, heartbeat_timeout_seconds=10.0)
        server = _server(
            clock,
            faults=FaultInjector(specs, sleep=clock.advance),
            supervisor=supervisor,
            max_retries=3,
            retry_backoff_seconds=6.0,
            retry_backoff_cap=6.0,
            sleep=backoff,
        )
        state["server"] = server
        request = _requests(small_geometry, [loop])[0]
        server.submit(request)
        results = server.drain()

        assert request.request_id in results
        assert supervisor.hangs == (1 if drop_heartbeats else 0)
        assert server.stats.requeues == (1 if drop_heartbeats else 0)

        clean = _server(type(fake_clock)())
        control = _requests(small_geometry, [loop])[0]
        clean.submit(control)
        assert (
            results[request.request_id].solution.tobytes()
            == clean.drain()[control.request_id].solution.tobytes()
        )

    def test_exhausted_restart_budget_fails_instead_of_requeueing(
        self, small_geometry, harmonic_loops, fake_clock
    ):
        loop = harmonic_loops(1, seed=44)[0]
        faults = FaultInjector(
            [FaultSpec(site=WORKER_DEATH, index=0, kind="death", repeat=True)],
            sleep=fake_clock.advance,
        )
        supervisor = WorkerSupervisor(clock=fake_clock, max_restarts=0)
        server = _server(fake_clock, faults=faults, supervisor=supervisor)
        request = _requests(small_geometry, [loop])[0]
        future = server.submit_async(request)
        assert server.drain() == {}
        assert isinstance(future.exception(), RetryExhaustedError)
        assert supervisor.exhausted
        assert server.health()["live"] is False


# ---------------------------------------------------------------------------
# Server integration: circuit breaking
# ---------------------------------------------------------------------------


class TestServerBreakers:
    def test_breaker_trips_fast_rejects_then_probes_closed(
        self, small_geometry, harmonic_loops, fake_clock
    ):
        loops = harmonic_loops(5, seed=45)
        faults = FaultInjector(
            [FaultSpec(site=WORKER_SOLVE, index=i, kind=CRASH) for i in range(3)],
            sleep=fake_clock.advance,
        )
        board = BreakerBoard(
            BreakerPolicy(failure_threshold=3, reset_timeout_seconds=5.0),
            clock=fake_clock,
        )
        server = _server(fake_clock, faults=faults, max_retries=0, breakers=board)
        requests = _requests(small_geometry, loops)

        for request in requests[:3]:  # three consecutive backend failures
            future = server.submit_async(request)
            assert server.drain() == {}
            assert isinstance(future.exception(), RetryExhaustedError)
        assert board.snapshot()["states"]["open"] == 1

        # While open: fast typed rejection, no solver call burned.
        with pytest.raises(CircuitOpenError):
            server.submit(requests[3])
        assert faults.calls(WORKER_SOLVE) == 3
        assert server.stats.breaker_rejections == 1
        assert server.health()["breakers"]["states"]["open"] == 1

        # After the cool-down the half-open probe (a clean solve) closes it.
        fake_clock.advance(5.0)
        server.submit(requests[4])
        results = server.drain()
        assert requests[4].request_id in results
        assert board.snapshot()["states"] == {"closed": 1, "open": 0, "half_open": 0}

    def test_breakers_disabled_by_default_flag(self, fake_clock):
        assert _server(fake_clock, breakers=False).breakers is None
        assert _server(fake_clock).breakers is not None  # on by default


# ---------------------------------------------------------------------------
# Memory-driven load shedding
# ---------------------------------------------------------------------------


class TestMemoryShedding:
    def test_sheds_lowest_priority_first(self, small_geometry, harmonic_loops,
                                         fake_clock):
        loops = harmonic_loops(4, seed=46)
        quotas = {
            "free": TenantQuota(priority=0),
            "paid": TenantQuota(priority=2),
        }
        server = _server(fake_clock, quotas=quotas)
        assert server.admission.shed_threshold(0) == pytest.approx(0.8)
        assert server.admission.shed_threshold(2) == pytest.approx(0.8 + 0.2 * 2 / 3)

        accountant = enable_memory_accounting(
            MemoryAccountant(budget_bytes=1_000_000)
        )
        try:
            accountant.add("test.ballast", 850_000)  # pressure 0.85
            free, paid, paid2, free2 = (
                _requests(small_geometry, loops[:1], tenant="free")
                + _requests(small_geometry, loops[1:3], tenant="paid")
                + _requests(small_geometry, loops[3:], tenant="free")
            )
            with pytest.raises(MemoryPressureError):
                server.submit(free)  # 0.85 >= 0.8: the free tier sheds
            server.submit(paid)      # 0.85 < 0.933: paid still admitted

            accountant.add("test.ballast", 100_000)  # pressure >= 0.95
            with pytest.raises(MemoryPressureError):
                server.submit(paid2)  # now even the top priority sheds
            with pytest.raises(MemoryPressureError):
                server.submit(free2)
            assert server.stats.memory_sheds == 3

            health = server.health()
            assert health["ready"] is True  # pressure < 1.0: degraded, not dead
            assert health["memory"]["pressure"] == pytest.approx(
                accountant.pressure()
            )
            assert health["memory"]["headroom_bytes"] == accountant.headroom_bytes()
        finally:
            disable_memory_accounting()

        results = server.drain()  # the one admitted request still completes
        assert list(results) == [paid.request_id]

    def test_budget_gauges_published(self):
        from repro.obs import MetricsRegistry

        accountant = MemoryAccountant(budget_bytes=1000)
        accountant.add("x", 250)
        registry = MetricsRegistry()
        accountant.publish(registry)
        metrics = registry.snapshot()
        assert metrics["memory.budget_bytes"]["value"] == 1000
        assert metrics["memory.headroom_bytes"]["value"] == 750
        assert metrics["memory.pressure"]["value"] == pytest.approx(0.25)
        assert metrics["memory.live_bytes{owner=x}"]["value"] == 250


# ---------------------------------------------------------------------------
# Graceful shutdown + interruptible backoff
# ---------------------------------------------------------------------------


class TestGracefulShutdown:
    def test_drain_and_close_checkpoints_and_refuses(
        self, small_geometry, harmonic_loops, fake_clock, tmp_path
    ):
        loops = harmonic_loops(2, seed=47)
        server = _server(
            fake_clock, journal=tmp_path / "requests.wal", supervisor=True
        )
        requests = _requests(small_geometry, loops)
        for request in requests:
            server.submit(request)
        results = server.drain_and_close()
        assert sorted(results) == sorted(r.request_id for r in requests)
        assert server.store.journal.stats()["checkpoints"] == 1

        with pytest.raises(ServerClosedError):
            server.submit(_requests(small_geometry, loops[:1])[0])
        health = server.health()
        assert health["status"] == "draining"
        assert health["ready"] is False
        assert health["live"] is True
        for section in ("breakers", "supervisor", "journal"):
            assert section in health

    def test_close_interrupts_retry_backoff_fake_clock(
        self, small_geometry, harmonic_loops, fake_clock
    ):
        # Regression: close() used to sleep out the full backoff.  Here the
        # first backoff "sleep" closes the server; the second backoff must
        # be skipped entirely, so the fake clock stops at exactly 5s.
        loop = harmonic_loops(1, seed=48)[0]
        state = {}

        def sleep_then_close(seconds):
            fake_clock.advance(seconds)
            state["server"].close()

        faults = FaultInjector(
            [FaultSpec(site=WORKER_SOLVE, index=i, kind=CRASH) for i in range(3)],
            sleep=fake_clock.advance,
        )
        server = _server(
            fake_clock, faults=faults, max_retries=2,
            retry_backoff_seconds=5.0, retry_backoff_cap=5.0,
            sleep=sleep_then_close,
        )
        state["server"] = server
        request = _requests(small_geometry, [loop])[0]
        future = server.submit_async(request)
        assert server.drain() == {}
        assert isinstance(future.exception(), RetryExhaustedError)
        assert fake_clock.now == 5.0  # one backoff slept, the second skipped

    def test_close_interrupts_retry_backoff_wall_clock(self, small_geometry,
                                                       harmonic_loops):
        # Async server with the default interruptible wait: a 30s backoff is
        # pending when close() arrives, and close() must not wait it out.
        loop = harmonic_loops(1, seed=49)[0]
        faults = FaultInjector([FaultSpec(site=WORKER_SOLVE, index=0, kind=CRASH)])
        server = Server(
            policy=BatchPolicy(max_batch_size=8, max_wait_seconds=0.01),
            cache=SolutionCache(capacity=64),
            faults=faults,
            async_workers=1,
            max_retries=1,
            retry_backoff_seconds=30.0,
            retry_backoff_cap=30.0,
        )
        with server:
            request = SolveRequest.create(small_geometry, loop, max_iterations=40)
            future = server.submit_async(request)
            deadline = time.monotonic() + 30.0
            while server.stats.retries < 1 and time.monotonic() < deadline:
                time.sleep(0.01)
            assert server.stats.retries == 1
            started = time.monotonic()
            server.close()
            elapsed = time.monotonic() - started
        assert elapsed < 15.0, f"close() waited out the backoff ({elapsed:.1f}s)"
        # The interrupted backoff falls through to the clean second attempt
        # during close()'s final sweep, so the future still resolves.
        assert future.done() and future.exception() is None
