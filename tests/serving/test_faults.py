"""Deterministic fault-injection scenarios: retries, deadlines, idempotent delivery.

Every scenario runs on the injectable fake clock — backoff sleeps and
injected delays advance it instead of sleeping — so the whole file is
wall-clock free and bit-for-bit reproducible.  Failing tests persist their
Chrome trace under ``test-artifacts/serving/`` for the CI artifact upload.
"""

import re
from pathlib import Path

import numpy as np
import pytest

from repro.obs import disable_tracing, enable_tracing
from repro.serving import (
    BATCH_ASSEMBLY,
    CRASH,
    DELAY,
    DUPLICATE,
    STORE_DELIVER,
    WORKER_SOLVE,
    BatchPolicy,
    DeadlineExceededError,
    FaultInjector,
    FaultSchedule,
    FaultSpec,
    InjectedFault,
    RetryExhaustedError,
    Server,
    SolutionCache,
    SolveRequest,
)

ARTIFACTS = Path(__file__).resolve().parents[2] / "test-artifacts" / "serving"


@pytest.fixture(autouse=True)
def _trace_artifact(request):
    """Trace every fault scenario; keep the Chrome trace if the test fails."""

    tracer = enable_tracing()
    try:
        yield tracer
    finally:
        disable_tracing()
        report = getattr(request.node, "rep_call", None)
        if report is not None and report.failed and tracer.span_count():
            ARTIFACTS.mkdir(parents=True, exist_ok=True)
            safe = re.sub(r"[^\w.-]+", "_", request.node.nodeid)
            tracer.write_chrome_trace(ARTIFACTS / f"{safe}.json")


def _server(clock, faults=None, **kwargs):
    kwargs.setdefault("policy", BatchPolicy(max_batch_size=8, max_wait_seconds=1e9))
    kwargs.setdefault("cache", SolutionCache(capacity=64))
    kwargs.setdefault("sleep", clock.advance)  # backoff advances the fake clock
    return Server(clock=clock, faults=faults, **kwargs)


class TestRetries:
    def test_worker_crash_retries_then_succeeds(self, small_geometry, harmonic_loops,
                                                fake_clock):
        loops = harmonic_loops(3, seed=11)
        faults = FaultInjector(
            [FaultSpec(site=WORKER_SOLVE, index=0, kind=CRASH)],
            sleep=fake_clock.advance,
        )
        server = _server(fake_clock, faults=faults, max_retries=2)
        ids = [
            server.submit(SolveRequest.create(small_geometry, loop, max_iterations=40))
            for loop in loops
        ]
        results = server.drain()
        assert sorted(results) == sorted(ids)
        assert server.stats.retries == 1
        assert server.stats.failures == 0
        assert faults.calls(WORKER_SOLVE) == 2  # crashed attempt + clean retry

        # The retried batch is bitwise identical to an unfaulted server's.
        clean = _server(fake_clock)
        clean_ids = [
            clean.submit(SolveRequest.create(small_geometry, loop, max_iterations=40))
            for loop in loops
        ]
        clean_results = clean.drain()
        for faulted_id, clean_id in zip(ids, clean_ids):
            assert (
                results[faulted_id].solution.tobytes()
                == clean_results[clean_id].solution.tobytes()
            )

    def test_mid_batch_rank_crash_retries_whole_batch(self, small_geometry,
                                                      harmonic_loops, fake_clock):
        # Only rank 1 of the two-rank pool crashes: a genuine mid-batch
        # worker failure (the other rank is aborted out of its allreduce).
        faults = FaultInjector(
            [FaultSpec(site=WORKER_SOLVE, index=0, kind=CRASH, rank=1)],
            sleep=fake_clock.advance,
        )
        server = _server(fake_clock, faults=faults, world_size=2, max_retries=2)
        loops = harmonic_loops(4, seed=12)
        ids = [
            server.submit(SolveRequest.create(small_geometry, loop, max_iterations=40))
            for loop in loops
        ]
        results = server.drain()
        assert sorted(results) == sorted(ids)
        assert server.stats.retries == 1
        assert faults.calls(WORKER_SOLVE, rank=1) == 2

    def test_retry_exhaustion_raises_typed_error(self, small_geometry, harmonic_loops,
                                                 fake_clock):
        loops = harmonic_loops(1, seed=13)
        faults = FaultInjector(
            [FaultSpec(site=WORKER_SOLVE, index=i, kind=CRASH) for i in range(3)],
            sleep=fake_clock.advance,
        )
        server = _server(fake_clock, faults=faults, max_retries=2)
        request = SolveRequest.create(small_geometry, loops[0], max_iterations=40)
        server.submit(request)
        future = server.future(request.request_id)
        results = server.drain()
        assert results == {}
        error = future.exception()
        assert isinstance(error, RetryExhaustedError)
        assert error.attempts == 3
        assert isinstance(error.__cause__, InjectedFault)
        with pytest.raises(RetryExhaustedError):
            future.result(timeout=0)
        assert server.stats.retries == 2
        assert server.stats.failures == 1
        assert server.store.stats()["failures"] == 1

        # The failed key stays reclaimable: a fresh submission (schedule
        # exhausted by now) claims it again and succeeds.
        retry = SolveRequest.create(small_geometry, loops[0], max_iterations=40)
        server.submit(retry)
        results = server.drain()
        assert results[retry.request_id].converged is not None
        assert server.store.stats()["claims"] == 2

    def test_assembly_crash_fails_batch_with_cause(self, small_geometry,
                                                   harmonic_loops, fake_clock):
        faults = FaultInjector(
            [FaultSpec(site=BATCH_ASSEMBLY, index=0, kind=CRASH)],
            sleep=fake_clock.advance,
        )
        server = _server(fake_clock, faults=faults)
        request = SolveRequest.create(
            small_geometry, harmonic_loops(1, seed=14)[0], max_iterations=40
        )
        server.submit(request)
        future = server.future(request.request_id)
        assert server.drain() == {}
        error = future.exception()
        assert isinstance(error, RetryExhaustedError)
        assert isinstance(error.__cause__, InjectedFault)
        assert server.stats.failures == 1
        # Assembly recovered on the next submission (call index 1 is clean).
        again = SolveRequest.create(
            small_geometry, harmonic_loops(1, seed=14)[0], max_iterations=40
        )
        server.submit(again)
        assert again.request_id in server.drain()


class TestDeadlines:
    def test_injected_slow_solve_trips_deadline(self, small_geometry, harmonic_loops,
                                                fake_clock):
        # The straggler advances the fake clock 10s; the request allowed 5s.
        faults = FaultInjector(
            [FaultSpec(site=WORKER_SOLVE, index=0, kind=DELAY, delay_seconds=10.0)],
            sleep=fake_clock.advance,
        )
        server = _server(fake_clock, faults=faults)
        request = SolveRequest.create(
            small_geometry, harmonic_loops(1, seed=15)[0],
            max_iterations=40, deadline_seconds=5.0,
        )
        server.submit(request)
        future = server.future(request.request_id)
        assert server.drain() == {}
        error = future.exception()
        assert isinstance(error, DeadlineExceededError)
        assert "after its" in str(error)
        assert server.stats.timeouts == 1
        assert server.stats.fused_runs == 1  # the solve ran, but arrived late

    def test_expired_request_fails_fast_before_dispatch(self, small_geometry,
                                                        harmonic_loops, fake_clock):
        server = _server(fake_clock)
        request = SolveRequest.create(
            small_geometry, harmonic_loops(1, seed=16)[0],
            max_iterations=40, deadline_seconds=2.0,
        )
        server.submit(request)  # queued: batch of 8 never fills
        future = server.future(request.request_id)
        fake_clock.advance(3.0)
        assert server.drain() == {}
        error = future.exception()
        assert isinstance(error, DeadlineExceededError)
        assert "before dispatch" in str(error)
        assert server.stats.fused_runs == 0  # no solver capacity was spent
        assert server.stats.timeouts == 1
        # Expired requests never reach the queue-wait histogram, so they
        # cannot skew the served-traffic latency percentiles.
        waits = server.stats.registry.histogram("serving.queue_wait_seconds")
        assert waits.count == 0

    def test_live_waiter_keeps_expired_duplicate_alive(self, small_geometry,
                                                       harmonic_loops, fake_clock):
        # One waiter with a tight deadline, a duplicate without any: the
        # solve must still run (expire only fires when ALL waiters expired),
        # the deadlined waiter is rejected at completion, the other served.
        faults = FaultInjector(
            [FaultSpec(site=WORKER_SOLVE, index=0, kind=DELAY, delay_seconds=10.0)],
            sleep=fake_clock.advance,
        )
        server = _server(fake_clock, faults=faults)
        loop = harmonic_loops(1, seed=17)[0]
        tight = SolveRequest.create(
            small_geometry, loop, max_iterations=40, deadline_seconds=5.0
        )
        patient = SolveRequest.create(small_geometry, loop, max_iterations=40)
        server.submit(tight)
        server.submit(patient)
        tight_future = server.future(tight.request_id)
        results = server.drain()
        assert list(results) == [patient.request_id]
        assert isinstance(tight_future.exception(), DeadlineExceededError)
        assert server.stats.fused_runs == 1


class TestStoreDelivery:
    def test_duplicate_delivery_is_idempotent(self, small_geometry, harmonic_loops,
                                              fake_clock):
        faults = FaultInjector(
            [FaultSpec(site=STORE_DELIVER, index=0, kind=DUPLICATE)],
            sleep=fake_clock.advance,
        )
        server = _server(fake_clock, faults=faults)
        loop = harmonic_loops(1, seed=18)[0]
        ids = [
            server.submit(SolveRequest.create(small_geometry, loop, max_iterations=40))
            for _ in range(2)
        ]
        results = server.drain()
        assert sorted(results) == sorted(ids)
        assert server.stats.fused_runs == 1
        assert server.store.stats()["duplicate_deliveries"] == 1
        first, second = (results[i].solution for i in ids)
        assert first.tobytes() == second.tobytes()


class TestSchedules:
    def test_spec_validation(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultSpec(site="nope", index=0)
        with pytest.raises(ValueError, match="store boundary"):
            FaultSpec(site=WORKER_SOLVE, index=0, kind=DUPLICATE)
        with pytest.raises(ValueError, match="non-negative"):
            FaultSpec(site=WORKER_SOLVE, index=-1)

    def test_seeded_schedule_is_reproducible(self):
        first = FaultSchedule.seeded(123, num_faults=5)
        second = FaultSchedule.seeded(123, num_faults=5)
        assert first.specs == second.specs
        assert FaultSchedule.seeded(124, num_faults=5).specs != first.specs
        for spec in first:
            if spec.site == STORE_DELIVER:
                assert spec.kind == DUPLICATE
            else:
                assert spec.kind in (CRASH, DELAY)

    def test_seeded_scenario_replays_identically(self, small_geometry, harmonic_loops,
                                                 fake_clock):
        loops = harmonic_loops(4, seed=19)

        def run_once():
            clock = type(fake_clock)()  # fresh fake clock per run
            faults = FaultInjector(
                FaultSchedule.seeded(7, num_faults=2,
                                     sites=(WORKER_SOLVE, STORE_DELIVER),
                                     max_index=3),
                sleep=clock.advance,
            )
            server = _server(clock, faults=faults, max_retries=4)
            requests = [
                SolveRequest.create(small_geometry, loop, max_iterations=40)
                for loop in loops
            ]
            futures = [server.submit_async(request) for request in requests]
            server.drain()
            outcomes = []
            for future in futures:
                error = future.exception(timeout=0)
                if error is None:
                    outcomes.append(future.result(timeout=0).solution.tobytes())
                else:
                    outcomes.append(type(error).__name__)
            fired = [(site, index, spec.kind) for site, index, spec in faults.fired]
            counters = (server.stats.retries, server.stats.failures,
                        server.stats.timeouts, server.stats.fused_runs)
            return outcomes, fired, counters

        assert run_once() == run_once()

    def test_disabled_injector_is_inert(self, small_geometry, harmonic_loops,
                                        fake_clock):
        faults = FaultInjector(
            [FaultSpec(site=WORKER_SOLVE, index=0, kind=CRASH)],
            sleep=fake_clock.advance, enabled=False,
        )
        server = _server(fake_clock, faults=faults)
        request = SolveRequest.create(
            small_geometry, harmonic_loops(1, seed=20)[0], max_iterations=40
        )
        server.submit(request)
        assert request.request_id in server.drain()
        assert faults.calls(WORKER_SOLVE) == 0
        assert faults.fired == []
