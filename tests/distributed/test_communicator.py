"""Simulated MPI communicator: point-to-point, collectives, failure handling."""

import numpy as np
import pytest

from repro.distributed import (
    CommunicationTrace,
    ReduceOp,
    SelfCommunicator,
    SpmdFailure,
    payload_bytes,
    run_spmd,
)


class TestPayloadBytes:
    def test_numpy_arrays(self):
        assert payload_bytes(np.zeros(10)) == 80

    def test_scalars_tuples_dicts(self):
        assert payload_bytes(1.5) == 8
        assert payload_bytes((np.zeros(2), 3)) == 24
        assert payload_bytes({"a": np.zeros(4)}) == 32
        assert payload_bytes(None) == 0
        assert payload_bytes(object()) > 0


class TestSelfCommunicator:
    def test_collectives_are_identity(self):
        comm = SelfCommunicator()
        assert comm.size == 1 and comm.rank == 0 and comm.is_root
        out = comm.allreduce(np.array([1.0, 2.0]), op=ReduceOp.MEAN)
        assert np.allclose(out, [1.0, 2.0])
        assert comm.allgather("x") == ["x"]
        assert comm.bcast(42) == 42
        comm.barrier()
        assert comm.trace.allreduces == 1

    def test_point_to_point_rejected(self):
        comm = SelfCommunicator()
        with pytest.raises(RuntimeError):
            comm.send(1, 0)
        with pytest.raises(RuntimeError):
            comm.recv(0)


class TestThreadCluster:
    def test_allreduce_ops(self):
        def program(comm):
            v = np.full(3, float(comm.rank + 1))
            return (
                comm.allreduce(v, op=ReduceOp.SUM)[0],
                comm.allreduce(v, op=ReduceOp.MEAN)[0],
                comm.allreduce(v, op=ReduceOp.MAX)[0],
                comm.allreduce(v, op=ReduceOp.MIN)[0],
            )

        results = run_spmd(4, program)
        for total, mean, maximum, minimum in results:
            assert total == pytest.approx(10.0)
            assert mean == pytest.approx(2.5)
            assert maximum == pytest.approx(4.0)
            assert minimum == pytest.approx(1.0)

    def test_unknown_reduce_op(self):
        def program(comm):
            comm.allreduce(np.zeros(1), op="median")

        with pytest.raises(SpmdFailure):
            run_spmd(2, program)

    def test_ring_exchange_with_tags(self):
        def program(comm):
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            comm.send(np.array([comm.rank]), right, tag=7)
            received = comm.recv(left, tag=7)
            return int(received[0])

        assert run_spmd(5, program) == [4, 0, 1, 2, 3]

    def test_message_matching_by_source_and_tag(self):
        def program(comm):
            if comm.rank == 0:
                comm.send("late", 1, tag=2)
                comm.send("early", 1, tag=1)
                return None
            first = comm.recv(0, tag=1)
            second = comm.recv(0, tag=2)
            return (first, second)

        assert run_spmd(2, program)[1] == ("early", "late")

    def test_sendrecv_exchanges_payloads(self):
        def program(comm):
            peer = 1 - comm.rank
            return comm.sendrecv(f"from-{comm.rank}", peer)

        assert run_spmd(2, program) == ["from-1", "from-0"]

    def test_allgather_and_bcast(self):
        def program(comm):
            gathered = comm.allgather(comm.rank * 10)
            root_value = comm.bcast("hello" if comm.rank == 0 else None, root=0)
            return gathered, root_value

        results = run_spmd(3, program)
        for gathered, root_value in results:
            assert gathered == [0, 10, 20]
            assert root_value == "hello"

    def test_bcast_from_nonzero_root(self):
        def program(comm):
            return comm.bcast(comm.rank if comm.rank == 2 else None, root=2)

        assert run_spmd(3, program) == [2, 2, 2]

    def test_barrier_and_trace_counts(self):
        def program(comm):
            comm.barrier()
            comm.allreduce(np.zeros(4))
            if comm.rank == 0:
                comm.send(np.zeros(2), 1)
            elif comm.rank == 1:
                comm.recv(0)
            return comm.trace.as_dict()

        traces = run_spmd(2, program)
        assert traces[0]["sends"] == 1 and traces[0]["send_bytes"] == 16
        assert traces[1]["receives"] == 1 and traces[1]["recv_bytes"] == 16
        assert all(t["allreduces"] == 1 and t["barriers"] == 1 for t in traces)

    def test_rank_exception_propagates_as_spmd_failure(self):
        def program(comm):
            if comm.rank == 1:
                raise ValueError("rank 1 exploded")
            comm.barrier()

        with pytest.raises(SpmdFailure) as excinfo:
            run_spmd(3, program)
        assert 1 in excinfo.value.failures

    def test_invalid_peer_and_self_send(self):
        def program(comm):
            if comm.rank == 0:
                with pytest.raises(ValueError):
                    comm.send(1, 99)
                with pytest.raises(ValueError):
                    comm.send(1, 0)
            comm.barrier()

        run_spmd(2, program)

    def test_world_size_one_uses_self_communicator(self):
        results = run_spmd(1, lambda comm: type(comm).__name__)
        assert results == ["SelfCommunicator"]

    def test_invalid_world_size(self):
        with pytest.raises(ValueError):
            run_spmd(0, lambda comm: None)


class TestCommunicationTrace:
    def test_merge_adds_fields(self):
        a, b = CommunicationTrace(), CommunicationTrace()
        a.record_send(100)
        b.record_send(50)
        b.record_allgather(10)
        merged = a.merge(b)
        assert merged.sends == 2 and merged.send_bytes == 150
        assert merged.allgathers == 1
