"""Process grids, block partitioning and the alpha-beta cost model."""

import numpy as np
import pytest

from repro.distributed import (
    INTERCONNECTS,
    AlphaBetaModel,
    BlockPartition,
    CommunicationTrace,
    ProcessGrid,
    block_range,
    choose_grid_dims,
    estimate_trace_time,
    morton_encode,
)


class TestGridDims:
    @pytest.mark.parametrize(
        "size, expected", [(1, (1, 1)), (4, (2, 2)), (6, (2, 3)), (8, (2, 4)), (32, (4, 8)), (7, (1, 7))]
    )
    def test_choose_grid_dims(self, size, expected):
        assert choose_grid_dims(size) == expected

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            choose_grid_dims(0)


class TestBlockRange:
    def test_balanced_partition_covers_everything(self):
        ranges = [block_range(10, 3, i) for i in range(3)]
        assert ranges == [(0, 4), (4, 7), (7, 10)]

    def test_errors(self):
        with pytest.raises(ValueError):
            block_range(10, 0, 0)
        with pytest.raises(ValueError):
            block_range(10, 3, 3)


class TestMorton:
    def test_interleaving(self):
        assert morton_encode(0, 0) == 0
        assert morton_encode(0, 1) == 1
        assert morton_encode(1, 0) == 2
        assert morton_encode(1, 1) == 3
        assert morton_encode(2, 2) == 12

    def test_morton_ordering_is_a_permutation(self):
        grid = ProcessGrid(16, ordering="morton")
        coords = {grid.coords(r) for r in range(16)}
        assert len(coords) == 16


class TestProcessGrid:
    def test_row_scan_mapping(self):
        grid = ProcessGrid(6)  # 2 x 3
        assert grid.coords(0) == (0, 0)
        assert grid.coords(4) == (1, 1)
        assert grid.rank_at(1, 2) == 5

    def test_neighbors_interior_corner_edge(self):
        grid = ProcessGrid(9, dims=(3, 3))
        assert len(grid.neighbors(4)) == 8           # interior
        assert len(grid.neighbors(0)) == 3            # corner
        assert len(grid.neighbors(1)) == 5            # edge
        assert len(grid.orthogonal_neighbors(4)) == 4
        assert len(grid.diagonal_neighbors(4)) == 4

    def test_partition_covers_lattice_without_overlap(self):
        grid = ProcessGrid(6, dims=(2, 3))
        coverage = np.zeros((10, 9), dtype=int)
        for rank in range(6):
            p = grid.partition(10, 9, rank)
            coverage[p.row_start: p.row_stop, p.col_start: p.col_stop] += 1
        assert np.all(coverage == 1)

    def test_partition_contains(self):
        p = BlockPartition(2, 5, 1, 4)
        assert p.contains(3, 2) and not p.contains(5, 2)
        assert p.rows == 3 and p.cols == 3 and p.count == 9

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            ProcessGrid(6, dims=(2, 2))
        with pytest.raises(ValueError):
            ProcessGrid(4, ordering="hilbert")


class TestAlphaBetaModel:
    def test_point_to_point_cost(self):
        model = AlphaBetaModel(alpha=1e-5, beta=1e9)
        assert model.point_to_point(1e6, messages=2) == pytest.approx(2e-5 + 1e-3)

    def test_ring_collectives_scale_with_world_size(self):
        model = AlphaBetaModel(alpha=1e-6, beta=1e9)
        assert model.ring_allreduce(1e6, 1) == 0.0
        assert model.ring_allreduce(1e6, 8) > model.ring_allgather(1e6 / 8, 8)
        assert model.broadcast(1e6, 16) > model.broadcast(1e6, 2)

    def test_latency_vs_bandwidth_regimes(self):
        slow_latency = AlphaBetaModel(alpha=1e-3, beta=1e12)
        fast_latency = AlphaBetaModel(alpha=1e-7, beta=1e12)
        # For tiny messages, latency dominates (the paper's mpi4py observation).
        assert slow_latency.point_to_point(64) > 100 * fast_latency.point_to_point(64)

    def test_paper_formula_decreases_with_sqrt_p(self):
        model = INTERCONNECTS["infiniband-100g"]
        t4 = model.mfp_iteration_comm(1000, 2048, 2, 4)
        t16 = model.mfp_iteration_comm(1000, 2048, 2, 16)
        assert t16 < t4
        assert model.mfp_iteration_comm(1000, 2048, 2, 1) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            AlphaBetaModel(alpha=-1.0, beta=1e9)

    def test_interconnect_table_contents(self):
        assert set(INTERCONNECTS) >= {"infiniband-100g", "pcie-32g", "nvlink-200g", "nvlink-600g"}
        assert INTERCONNECTS["nvlink-600g"].beta > INTERCONNECTS["pcie-32g"].beta


class TestTraceEstimation:
    def test_breakdown_keys_and_totals(self):
        trace = CommunicationTrace()
        trace.record_send(8000)
        trace.record_recv(8000)
        trace.record_allreduce(1_000_000)
        trace.record_allgather(500_000)
        model = AlphaBetaModel(alpha=1e-5, beta=1e9)
        estimate = estimate_trace_time(trace, model, world_size=8)
        assert set(estimate) == {"sendrecv", "allreduce", "allgather", "broadcast", "total"}
        assert estimate["total"] == pytest.approx(
            estimate["sendrecv"] + estimate["allreduce"] + estimate["allgather"] + estimate["broadcast"]
        )
        assert estimate["allreduce"] > 0 and estimate["allgather"] > 0

    def test_empty_trace_costs_nothing(self):
        estimate = estimate_trace_time(CommunicationTrace(), AlphaBetaModel(1e-6, 1e9), 4)
        assert estimate["total"] == 0.0


class TestShardAnchors:
    """Load-balanced sharding of irregular (composite-domain) anchor lists."""

    def _l_anchors(self):
        # anchor set of an L-shaped domain: irregular counts per block row
        return [(r, c) for r in range(5) for c in range(5) if not (r >= 2 and c >= 2)]

    @pytest.mark.parametrize("parts", [1, 2, 3, 5, 7, 16])
    @pytest.mark.parametrize("ordering", ["row", "morton"])
    def test_shards_partition_and_balance(self, parts, ordering):
        from repro.distributed import shard_anchors

        anchors = self._l_anchors()
        shards = shard_anchors(anchors, parts, ordering=ordering)
        assert len(shards) == parts
        merged = [a for shard in shards for a in shard]
        assert sorted(merged) == sorted(anchors)
        sizes = [len(s) for s in shards]
        assert max(sizes) - min(sizes) <= 1

    def test_row_ordering_preserves_input_order(self):
        from repro.distributed import shard_anchors

        anchors = self._l_anchors()
        shards = shard_anchors(anchors, 3, ordering="row")
        assert [a for s in shards for a in s] == anchors

    def test_morton_ordering_is_z_curve(self):
        from repro.distributed import shard_anchors

        anchors = self._l_anchors()
        merged = [a for s in shard_anchors(anchors, 4, ordering="morton") for a in s]
        keys = [morton_encode(r, c) for r, c in merged]
        assert keys == sorted(keys)

    def test_more_parts_than_anchors_gives_empty_shards(self):
        from repro.distributed import shard_anchors

        shards = shard_anchors([(0, 0), (0, 1)], 5)
        assert [len(s) for s in shards] == [1, 1, 0, 0, 0]

    def test_validation(self):
        from repro.distributed import shard_anchors

        with pytest.raises(ValueError):
            shard_anchors([(0, 0)], 0)
        with pytest.raises(ValueError):
            shard_anchors([(0, 0)], 2, ordering="hilbert")
