"""CompositeDomain: cell masks, boundary tracing, validation."""

import numpy as np
import pytest

from repro.domains import CompositeDomain


class TestConstruction:
    def test_rectangle_is_rectangle(self):
        d = CompositeDomain.rectangle(5, 3)
        assert d.is_rectangle
        assert (d.steps_x, d.steps_y) == (5, 3)
        assert d.num_cells == 15
        assert d.cell_mask().all()

    def test_from_rects_normalizes_to_origin(self):
        d = CompositeDomain.from_rects([(3, 5, 2, 2), (5, 5, 2, 2)])
        assert (d.steps_x, d.steps_y) == (2, 4)
        assert d.cell_mask().all()
        assert d.is_rectangle

    def test_raw_constructor_rejects_offset_rects(self):
        with pytest.raises(ValueError, match="normalized"):
            CompositeDomain(((1, 1, 2, 2),))

    def test_l_shape_cells(self):
        d = CompositeDomain.l_shape(4, 4, 2, 2)
        cells = d.cell_mask()
        assert not d.is_rectangle
        assert d.num_cells == 12
        # the top-right 2x2 notch is uncovered
        assert not cells[2:, 2:].any()
        assert cells[:2, :].all() and cells[:, :2].all()

    def test_plus_and_t_shapes(self):
        plus = CompositeDomain.plus_shape(2, 2)
        assert plus.num_cells == 2 * (6 * 2) - 4
        t = CompositeDomain.t_shape(6, 2, 2, 3)
        assert t.num_cells == 12 + 6

    def test_overlapping_rects_union(self):
        d = CompositeDomain.from_rects([(0, 0, 3, 3), (1, 1, 3, 3)])
        assert d.num_cells == 9 + 9 - 4

    def test_from_cells_roundtrip(self):
        rng = np.random.default_rng(0)
        base = CompositeDomain.l_shape(5, 4, 2, 2)
        rebuilt = CompositeDomain.from_cells(base.cell_mask())
        assert np.array_equal(rebuilt.cell_mask(), base.cell_mask())

    def test_rejects_empty_and_bad_rects(self):
        with pytest.raises(ValueError, match="at least one rectangle"):
            CompositeDomain.from_rects([])
        with pytest.raises(ValueError, match="non-positive side"):
            CompositeDomain.from_rects([(0, 0, 0, 2)])

    def test_rejects_disconnected(self):
        with pytest.raises(ValueError, match="not edge-connected"):
            CompositeDomain.from_rects([(0, 0, 2, 2), (0, 4, 2, 2)])
        # diagonal touching is not edge-connectivity
        with pytest.raises(ValueError, match="not edge-connected"):
            CompositeDomain.from_rects([(0, 0, 2, 2), (2, 2, 2, 2)])

    def test_rejects_holes(self):
        with pytest.raises(ValueError, match="holes"):
            CompositeDomain.from_rects(
                [(0, 0, 1, 6), (0, 0, 6, 1), (5, 0, 1, 6), (0, 5, 6, 1)]
            )


class TestBoundaryTrace:
    def test_rectangle_boundary_is_four_segments(self):
        d = CompositeDomain.rectangle(4, 3)
        segments = d.boundary_segments()
        assert segments == (
            ((0, 0), (0, 4)),   # bottom, left to right
            ((0, 4), (3, 4)),   # right, bottom to top
            ((3, 4), (3, 0)),   # top, right to left
            ((3, 0), (0, 0)),   # left, top to bottom
        )

    def test_l_shape_has_six_corners(self):
        d = CompositeDomain.l_shape(4, 4, 2, 2)
        assert len(d.boundary_corners) == 6
        # trace starts at the bottom-left corner heading +x
        assert d.boundary_corners[0] == (0, 0)
        assert d.boundary_corners[1] == (0, 4)

    def test_segments_form_closed_ccw_loop(self):
        for d in (
            CompositeDomain.l_shape(5, 4, 2, 2),
            CompositeDomain.plus_shape(2, 3),
            CompositeDomain.t_shape(8, 2, 4, 3),
        ):
            segments = d.boundary_segments()
            for (a, b), (c, _) in zip(segments, segments[1:] + segments[:1]):
                assert b == c  # each segment ends where the next begins
                assert (a[0] == b[0]) != (a[1] == b[1])  # axis-aligned
            # shoelace area in step units is positive (counter-clockwise) and
            # equals the covered cell count (simple polygon, no holes)
            corners = d.boundary_corners
            area = 0
            for (r0, c0), (r1, c1) in zip(corners, corners[1:] + corners[:1]):
                area += c0 * r1 - c1 * r0
            assert area / 2 == d.num_cells


class TestEquality:
    def test_hashable_and_equal_by_rects(self):
        a = CompositeDomain.l_shape(4, 4, 2, 2)
        b = CompositeDomain.l_shape(4, 4, 2, 2)
        assert a == b and hash(a) == hash(b)
        assert a != CompositeDomain.l_shape(4, 4, 2, 1)
        assert len({a, b}) == 1
