"""End-to-end Mosaic Flow solves on composite domains.

The acceptance bar of the composite extension: an L-shaped domain solved by
the *unchanged* ``MosaicFlowPredictor`` agrees with the masked FD reference
solve to the same MAE tolerance class as the rectangular Fig.-1 benchmark,
and a rectangular ``CompositeDomain`` reproduces rectangular results exactly
(bit for bit).
"""

import numpy as np
import pytest

from repro.domains import (
    CompositeDomain,
    CompositeMosaicGeometry,
    composite_reference_solution,
    sharded_assemble,
)
from repro.mosaic import FDSubdomainSolver, MosaicFlowPredictor, MosaicGeometry
from repro.mosaic.predictor import initialize_lattice_field


def _harmonic(x, y):
    return x * x - y * y + 0.3 * x * y


def _solver(geometry):
    return FDSubdomainSolver(geometry.subdomain_grid(), method="direct")


@pytest.fixture(scope="module")
def l_geometry():
    return CompositeMosaicGeometry(9, 0.5, CompositeDomain.l_shape(6, 6, 3, 3))


@pytest.fixture(scope="module")
def l_run(l_geometry):
    loop = l_geometry.boundary_from_function(_harmonic)
    result = MosaicFlowPredictor(l_geometry, _solver(l_geometry)).run(
        loop, max_iterations=400, tol=1e-9
    )
    return loop, result


class TestLShapeEndToEnd:
    def test_converges_to_masked_reference(self, l_geometry, l_run):
        loop, result = l_run
        assert result.converged
        reference = composite_reference_solution(l_geometry, loop)
        valid = l_geometry.valid_mask()
        mae = float(np.mean(np.abs(result.solution[valid] - reference[valid])))
        # same tolerance class as the rectangular Fig.-1 benchmark (the FD
        # subdomain solver makes the predictor a Schwarz iteration, so the
        # error is iteration error only)
        assert mae < 1e-6

    def test_outside_domain_stays_zero(self, l_geometry, l_run):
        _, result = l_run
        invalid = ~l_geometry.valid_mask()
        assert (result.solution[invalid] == 0).all()
        assert (result.lattice_field[invalid] == 0).all()

    def test_dirichlet_data_exact(self, l_geometry, l_run):
        loop, result = l_run
        rows, cols = l_geometry.global_boundary_indices()
        np.testing.assert_array_equal(result.solution[rows, cols], loop)

    def test_maximum_principle_inside_domain(self, l_geometry, l_run):
        loop, result = l_run
        valid = l_geometry.valid_mask()
        assert result.solution[valid].min() >= loop.min() - 1e-8
        assert result.solution[valid].max() <= loop.max() + 1e-8

    def test_other_shapes_converge(self):
        for domain in (
            CompositeDomain.plus_shape(2, 2),
            CompositeDomain.t_shape(6, 2, 2, 2),
            CompositeDomain.from_rects([(0, 0, 2, 4), (1, 2, 3, 4)]),  # staircase
        ):
            geometry = CompositeMosaicGeometry(9, 0.5, domain)
            loop = geometry.boundary_from_function(_harmonic)
            result = MosaicFlowPredictor(geometry, _solver(geometry)).run(
                loop, max_iterations=400, tol=1e-8
            )
            assert result.converged
            reference = composite_reference_solution(geometry, loop)
            valid = geometry.valid_mask()
            mae = float(np.mean(np.abs(result.solution[valid] - reference[valid])))
            assert mae < 1e-5


class TestRectangularBitwiseParity:
    def test_run_matches_mosaic_geometry_exactly(self):
        box = MosaicGeometry(subdomain_points=9, subdomain_extent=0.5,
                             steps_x=4, steps_y=4)
        composite = CompositeMosaicGeometry(9, 0.5, CompositeDomain.rectangle(4, 4))
        loop = box.global_grid().boundary_from_function(_harmonic)
        np.testing.assert_array_equal(loop, composite.boundary_from_function(_harmonic))

        for init_mode in ("mean", "zero", "linear"):
            reference = MosaicFlowPredictor(
                box, _solver(box), init_mode=init_mode
            ).run(loop, max_iterations=80, tol=1e-7)
            result = MosaicFlowPredictor(
                composite, _solver(composite), init_mode=init_mode
            ).run(loop, max_iterations=80, tol=1e-7)
            assert result.iterations == reference.iterations
            assert result.converged == reference.converged
            np.testing.assert_array_equal(result.lattice_field, reference.lattice_field)
            np.testing.assert_array_equal(result.solution, reference.solution)

    def test_initialization_matches_exactly(self):
        box = MosaicGeometry(subdomain_points=9, subdomain_extent=0.5,
                             steps_x=6, steps_y=4)
        composite = CompositeMosaicGeometry(9, 0.5, CompositeDomain.rectangle(6, 4))
        loop = box.global_grid().boundary_from_function(_harmonic)
        for mode in ("mean", "zero", "linear"):
            np.testing.assert_array_equal(
                initialize_lattice_field(box, loop, mode),
                initialize_lattice_field(composite, loop, mode),
            )


class TestCompositeInitialization:
    def test_linear_mode_rejected_off_rectangle(self, l_geometry):
        loop = l_geometry.boundary_from_function(_harmonic)
        with pytest.raises(ValueError, match="rectangular"):
            initialize_lattice_field(l_geometry, loop, "linear")

    def test_mean_fill_restricted_to_interior(self, l_geometry):
        loop = l_geometry.boundary_from_function(_harmonic)
        field = initialize_lattice_field(l_geometry, loop, "mean")
        assert (field[~l_geometry.valid_mask()] == 0).all()
        interior = l_geometry.interior_mask()
        np.testing.assert_allclose(field[interior], float(loop.mean()))


class TestShardedAssembly:
    @pytest.mark.parametrize("world_size", [1, 2, 3, 5])
    @pytest.mark.parametrize("ordering", ["row", "morton"])
    def test_matches_sequential_assembly(self, l_geometry, l_run, world_size, ordering):
        loop, result = l_run
        solution = sharded_assemble(
            result.lattice_field, l_geometry, _solver, world_size,
            boundary_loop=loop, ordering=ordering,
        )
        np.testing.assert_allclose(solution, result.solution, atol=1e-12, rtol=0)
