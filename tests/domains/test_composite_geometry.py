"""CompositeMosaicGeometry: anchors, masks, boundary loop, validation."""

import numpy as np
import pytest

from repro.domains import CompositeDomain, CompositeMosaicGeometry
from repro.mosaic import MosaicGeometry


@pytest.fixture(scope="module")
def l_geometry() -> CompositeMosaicGeometry:
    return CompositeMosaicGeometry(9, 0.5, CompositeDomain.l_shape(6, 6, 3, 3))


class TestRectangularReduction:
    """A rectangular composite reduces exactly to MosaicGeometry."""

    @pytest.fixture(scope="class")
    def pair(self):
        composite = CompositeMosaicGeometry(9, 0.5, CompositeDomain.rectangle(6, 4))
        box = MosaicGeometry(subdomain_points=9, subdomain_extent=0.5,
                             steps_x=6, steps_y=4)
        return composite, box

    def test_sizes(self, pair):
        composite, box = pair
        assert composite.is_rectangular
        assert composite.as_mosaic_geometry() == box
        assert (composite.global_nx, composite.global_ny) == (box.global_nx, box.global_ny)
        assert composite.global_boundary_size == box.global_boundary_size
        assert composite.num_subdomains == box.num_subdomains

    def test_anchors_and_phases_identical(self, pair):
        composite, box = pair
        assert composite.anchors() == box.anchors()
        for phase in range(4):
            assert composite.anchors_for_phase(phase) == box.anchors_for_phase(phase)

    def test_boundary_loop_identical_to_grid_convention(self, pair):
        composite, box = pair
        rows_c, cols_c = composite.global_boundary_indices()
        rows_b, cols_b = box.global_grid().boundary_indices()
        assert np.array_equal(rows_c, rows_b)
        assert np.array_equal(cols_c, cols_b)
        np.testing.assert_array_equal(
            composite.global_boundary_coordinates(),
            box.global_grid().boundary_coordinates(),
        )

    def test_masks_identical(self, pair):
        composite, box = pair
        assert np.array_equal(composite.lattice_mask(), box.lattice_mask())
        assert composite.valid_mask().all()
        assert np.array_equal(
            composite.boundary_point_mask(), box.global_grid().boundary_mask()
        )

    def test_insert_boundary_identical(self, pair):
        composite, box = pair
        loop = np.arange(composite.global_boundary_size, dtype=float)
        np.testing.assert_array_equal(
            composite.insert_global_boundary(loop),
            box.global_grid().insert_boundary(loop),
        )


class TestCompositeAnchors:
    def test_l_shape_excludes_notch_anchors(self, l_geometry):
        # 6x6 box has 5x5 anchors; the 3x3 notch forbids those whose 2x2
        # window overlaps it.
        box_anchors = set(l_geometry.box.anchors())
        anchors = l_geometry.anchors()
        assert set(anchors) < box_anchors
        assert len(anchors) == 16
        for r, c in anchors:
            assert not (r >= 2 and c >= 2)

    def test_anchor_windows_inside_valid_mask(self, l_geometry):
        valid = l_geometry.valid_mask()
        m = l_geometry.subdomain_points
        for r, c in l_geometry.anchors():
            r0, c0 = l_geometry.anchor_window((r, c))
            assert valid[r0: r0 + m, c0: c0 + m].all()

    def test_anchor_window_rejects_notch_anchor(self, l_geometry):
        with pytest.raises(ValueError, match="not inside"):
            l_geometry.anchor_window((4, 4))

    def test_phases_partition_anchors(self, l_geometry):
        union = []
        for phase in range(4):
            union.extend(l_geometry.anchors_for_phase(phase))
        assert sorted(union) == sorted(l_geometry.anchors())
        assert len(union) == len(set(union))


class TestMasks:
    def test_boundary_points_equal_traced_loop(self, l_geometry):
        rows, cols = l_geometry.global_boundary_indices()
        from_trace = set(zip(rows.tolist(), cols.tolist()))
        from_mask = set(zip(*map(list, np.nonzero(l_geometry.boundary_point_mask()))))
        assert from_trace == from_mask

    def test_masks_partition_valid_points(self, l_geometry):
        valid = l_geometry.valid_mask()
        interior = l_geometry.interior_mask()
        boundary = l_geometry.boundary_point_mask()
        assert not (interior & boundary).any()
        assert np.array_equal(interior | boundary, valid)

    def test_notch_points_invalid(self, l_geometry):
        valid = l_geometry.valid_mask()
        h = l_geometry.half
        # strictly inside the notch (top-right 3x3 steps of the 6x6 box)
        assert not valid[3 * h + 1:, 3 * h + 1:].any()
        # the re-entrant corner itself belongs to the domain boundary
        assert valid[3 * h, 3 * h]
        assert l_geometry.boundary_point_mask()[3 * h, 3 * h]

    def test_lattice_mask_restricted_to_domain(self, l_geometry):
        lattice = l_geometry.lattice_mask()
        assert not (lattice & ~l_geometry.valid_mask()).any()
        assert (lattice.sum() < l_geometry.box.lattice_mask().sum())


class TestValidation:
    def test_too_small_domain(self):
        with pytest.raises(ValueError, match="at least one full subdomain"):
            CompositeMosaicGeometry(9, 0.5, CompositeDomain.rectangle(1, 4))

    def test_thin_appendage_rejected(self):
        with pytest.raises(ValueError, match="outside every subdomain window"):
            CompositeMosaicGeometry(
                9, 0.5, CompositeDomain.from_rects([(0, 0, 4, 4), (1, 4, 1, 2)])
            )

    def test_zigzag_lattice_pinch_rejected(self):
        cells = np.zeros((4, 3), dtype=bool)
        cells[0:2, 0:2] = True
        cells[2:4, 1:3] = True
        with pytest.raises(ValueError, match="not updated by any anchor"):
            CompositeMosaicGeometry(9, 0.5, CompositeDomain.from_cells(cells))

    def test_hashable_for_cache_and_group_keys(self, l_geometry):
        twin = CompositeMosaicGeometry(9, 0.5, CompositeDomain.l_shape(6, 6, 3, 3))
        assert l_geometry == twin and hash(l_geometry) == hash(twin)
        other = CompositeMosaicGeometry(9, 0.5, CompositeDomain.l_shape(6, 6, 3, 2))
        assert l_geometry != other


class TestBoundarySampling:
    def test_boundary_from_function_matches_coordinates(self, l_geometry):
        loop = l_geometry.boundary_from_function(lambda x, y: 2 * x - y)
        coords = l_geometry.global_boundary_coordinates()
        np.testing.assert_allclose(loop, 2 * coords[:, 0] - coords[:, 1])

    def test_insert_extract_roundtrip(self, l_geometry):
        rows, cols = l_geometry.global_boundary_indices()
        loop = l_geometry.boundary_from_function(lambda x, y: x * y + 0.5)
        field = l_geometry.insert_global_boundary(loop)
        # duplicated corners carry consistent data, so extraction reproduces
        # the loop exactly
        np.testing.assert_array_equal(field[rows, cols], loop)
        assert (field[~l_geometry.valid_mask()] == 0).all()
