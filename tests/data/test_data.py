"""Gaussian-process boundary generation and SDNet dataset construction."""

import numpy as np
import pytest

from repro.data import (
    BatchIterator,
    GaussianProcessSampler,
    GPBoundaryConfig,
    SDNetDataset,
    generate_dataset,
    periodic_kernel,
    sample_kernel_hyperparameters,
    squared_exponential_kernel,
)
from repro.fd import apply_laplacian


class TestKernels:
    def test_rbf_diagonal_is_variance(self):
        s = np.linspace(0, 1, 10)
        K = squared_exponential_kernel(s, s, lengthscale=0.3, variance=2.0)
        assert np.allclose(np.diag(K), 2.0)
        assert np.all(K > 0) and np.allclose(K, K.T)

    def test_rbf_decays_with_distance(self):
        s = np.array([0.0, 0.1, 5.0])
        K = squared_exponential_kernel(s, s, 0.5, 1.0)
        assert K[0, 1] > K[0, 2]

    def test_periodic_kernel_wraps(self):
        s = np.array([0.0, 0.1, 1.9])
        K = periodic_kernel(s, s, lengthscale=1.0, variance=1.0, period=2.0)
        # 1.9 is close to 0.0 modulo the period
        assert K[0, 2] == pytest.approx(K[0, 1], rel=1e-6)

    def test_invalid_hyperparameters(self):
        s = np.zeros(3)
        with pytest.raises(ValueError):
            squared_exponential_kernel(s, s, -1.0, 1.0)
        with pytest.raises(ValueError):
            periodic_kernel(s, s, 1.0, 1.0, 0.0)


class TestHyperparameterSampling:
    def test_sobol_samples_within_ranges(self):
        config = GPBoundaryConfig(lengthscale_range=(0.1, 1.0), variance_range=(0.5, 2.0))
        hypers = sample_kernel_hyperparameters(64, config, seed=0)
        assert hypers.shape == (64, 2)
        assert np.all((hypers[:, 0] >= 0.1) & (hypers[:, 0] <= 1.0))
        assert np.all((hypers[:, 1] >= 0.5) & (hypers[:, 1] <= 2.0))

    def test_seeded_reproducibility(self):
        config = GPBoundaryConfig()
        assert np.array_equal(
            sample_kernel_hyperparameters(16, config, seed=3),
            sample_kernel_hyperparameters(16, config, seed=3),
        )


class TestGaussianProcessSampler:
    def test_sample_shapes_and_determinism(self):
        sampler = GaussianProcessSampler(boundary_size=32, perimeter=2.0, seed=5)
        curves = sampler.sample(8)
        assert curves.shape == (8, 32)
        sampler2 = GaussianProcessSampler(boundary_size=32, perimeter=2.0, seed=5)
        assert np.allclose(curves, sampler2.sample(8))

    def test_periodic_curves_close_smoothly(self):
        sampler = GaussianProcessSampler(
            boundary_size=64,
            perimeter=2.0,
            config=GPBoundaryConfig(periodic=True, lengthscale_range=(0.5, 1.0)),
            seed=1,
        )
        curve = sampler.sample_one()
        # wrap-around jump must be comparable to a typical neighbouring jump
        jumps = np.abs(np.diff(curve))
        wrap = abs(curve[0] - curve[-1])
        assert wrap < 5 * jumps.mean() + 1e-8

    def test_curves_differ_across_draws(self):
        sampler = GaussianProcessSampler(boundary_size=16, seed=0)
        curves = sampler.sample(4)
        assert np.std(curves, axis=0).max() > 1e-3

    def test_boundary_size_validation(self):
        with pytest.raises(ValueError):
            GaussianProcessSampler(boundary_size=2)


class TestDatasetGeneration:
    def test_generate_dataset_contents(self, tiny_dataset):
        assert len(tiny_dataset) == 16
        assert tiny_dataset.boundaries.shape == (16, tiny_dataset.grid.boundary_size)
        assert tiny_dataset.solutions.shape == (16,) + tiny_dataset.grid.shape

    def test_solutions_are_discrete_harmonic(self, tiny_dataset):
        residual = apply_laplacian(tiny_dataset.grid, tiny_dataset.solutions[0])
        assert np.max(np.abs(residual)) < 1e-8

    def test_solutions_match_boundaries(self, tiny_dataset):
        # The boundary loop visits each corner twice with (slightly) different
        # GP samples; the solver keeps the canonical (last-written) value, so
        # compare against the canonicalized loop rather than the raw samples.
        grid = tiny_dataset.grid
        canonical = grid.extract_boundary(grid.insert_boundary(tiny_dataset.boundaries[3]))
        extracted = grid.extract_boundary(tiny_dataset.solutions[3])
        assert np.allclose(extracted, canonical)

    def test_split_fractions_and_disjointness(self, tiny_dataset):
        train, val = tiny_dataset.split(validation_fraction=0.25, seed=0)
        assert len(train) == 12 and len(val) == 4
        # No boundary appears in both splits.
        for vb in val.boundaries:
            assert not any(np.allclose(vb, tb) for tb in train.boundaries)

    def test_split_validation(self, tiny_dataset):
        with pytest.raises(ValueError):
            tiny_dataset.split(validation_fraction=1.5)

    def test_shape_validation(self, tiny_dataset):
        with pytest.raises(ValueError):
            SDNetDataset(tiny_dataset.grid, tiny_dataset.boundaries[:, :-2], tiny_dataset.solutions)

    def test_generate_is_deterministic(self):
        a = generate_dataset(num_samples=4, resolution=9, seed=11)
        b = generate_dataset(num_samples=4, resolution=9, seed=11)
        assert np.allclose(a.boundaries, b.boundaries)
        assert np.allclose(a.solutions, b.solutions)


class TestBatchIterator:
    def test_batch_shapes(self, tiny_dataset):
        iterator = BatchIterator(tiny_dataset, batch_size=4, data_points_per_domain=10,
                                 collocation_points_per_domain=6, seed=0)
        batch = next(iter(iterator))
        assert batch.size == 4
        assert batch.boundaries.shape == (4, tiny_dataset.grid.boundary_size)
        assert batch.x_data.shape == (4, 10, 2)
        assert batch.u_data.shape == (4, 10)
        assert batch.x_collocation.shape == (4, 6, 2)
        assert len(iterator) == 4

    def test_data_points_carry_true_solution_values(self, tiny_dataset):
        iterator = BatchIterator(tiny_dataset, batch_size=2, data_points_per_domain=8, seed=1)
        batch = next(iter(iterator))
        grid = tiny_dataset.grid
        for row in range(batch.size):
            solution = tiny_dataset.solutions[batch.indices[row]]
            cols = np.rint(batch.x_data[row, :, 0] / grid.hx).astype(int)
            rows = np.rint(batch.x_data[row, :, 1] / grid.hy).astype(int)
            assert np.allclose(batch.u_data[row], solution[rows, cols])

    def test_rank_sharding_partitions_each_global_batch(self, tiny_dataset):
        full = BatchIterator(tiny_dataset, batch_size=4, seed=2, rank=0, world_size=1)
        shard0 = BatchIterator(tiny_dataset, batch_size=4, seed=2, rank=0, world_size=2)
        shard1 = BatchIterator(tiny_dataset, batch_size=4, seed=2, rank=1, world_size=2)
        for epoch in range(2):
            for it in (full, shard0, shard1):
                it.set_epoch(epoch)
            for b_full, b0, b1 in zip(full, shard0, shard1):
                combined = np.concatenate([b0.indices, b1.indices])
                assert np.array_equal(np.sort(combined), np.sort(b_full.indices))

    def test_epoch_changes_shuffle_order(self, tiny_dataset):
        iterator = BatchIterator(tiny_dataset, batch_size=8, seed=0)
        iterator.set_epoch(0)
        first = [b.indices.copy() for b in iterator]
        iterator.set_epoch(1)
        second = [b.indices.copy() for b in iterator]
        assert not all(np.array_equal(a, b) for a, b in zip(first, second))

    def test_invalid_configuration(self, tiny_dataset):
        with pytest.raises(ValueError):
            BatchIterator(tiny_dataset, batch_size=0)
        with pytest.raises(ValueError):
            BatchIterator(tiny_dataset, batch_size=5, world_size=2)
        with pytest.raises(ValueError):
            BatchIterator(tiny_dataset, batch_size=4, rank=3, world_size=2)
