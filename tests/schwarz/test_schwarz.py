"""Classical overlapping Schwarz baselines."""

import numpy as np
import pytest

from repro.fd import Grid2D, solve_laplace
from repro.pde import HARMONIC_FUNCTIONS
from repro.schwarz import AlternatingSchwarz, SubdomainWindow, uniform_decomposition


@pytest.fixture(scope="module")
def laplace_problem():
    grid = Grid2D(33, 33)
    exact = grid.field_from_function(HARMONIC_FUNCTIONS["exp_sine"])
    boundary = np.where(grid.boundary_mask(), exact, 0.0)
    reference = solve_laplace(grid, boundary, method="direct")
    return grid, boundary, reference


class TestDecomposition:
    def test_windows_cover_grid_and_overlap(self):
        grid = Grid2D(21, 21)
        windows = uniform_decomposition(grid, (2, 2), overlap=3)
        assert len(windows) == 4
        coverage = np.zeros(grid.shape, dtype=int)
        for w in windows:
            coverage[w.row_start: w.row_stop, w.col_start: w.col_stop] += 1
        assert coverage.min() >= 1
        assert coverage.max() >= 2  # overlap exists

    def test_window_properties(self):
        w = SubdomainWindow(0, 5, 2, 8)
        assert w.shape == (5, 6) and w.num_points == 30

    def test_invalid_parameters(self):
        grid = Grid2D(9, 9)
        with pytest.raises(ValueError):
            uniform_decomposition(grid, (2, 2), overlap=0)
        with pytest.raises(ValueError):
            uniform_decomposition(grid, (8, 8), overlap=1)
        with pytest.raises(ValueError):
            uniform_decomposition(grid, (0, 2), overlap=1)


class TestAlternatingSchwarz:
    @pytest.mark.parametrize("mode", ["multiplicative", "additive"])
    def test_converges_to_global_solution(self, laplace_problem, mode):
        grid, boundary, reference = laplace_problem
        windows = uniform_decomposition(grid, (2, 2), overlap=4)
        schwarz = AlternatingSchwarz(grid, windows, mode=mode)
        result = schwarz.run(boundary, max_iterations=80, tol=1e-10, reference=reference)
        assert result.converged
        assert np.max(np.abs(result.solution - reference)) < 1e-6
        # error history decreases monotonically (up to tiny numerical noise)
        errors = np.array(result.error_history)
        assert errors[-1] < errors[0]

    def test_multiplicative_converges_faster_than_additive(self, laplace_problem):
        grid, boundary, reference = laplace_problem
        windows = uniform_decomposition(grid, (2, 2), overlap=4)
        multiplicative = AlternatingSchwarz(grid, windows, mode="multiplicative").run(
            boundary, max_iterations=60, tol=1e-9
        )
        additive = AlternatingSchwarz(grid, windows, mode="additive").run(
            boundary, max_iterations=60, tol=1e-9
        )
        assert multiplicative.iterations <= additive.iterations

    def test_more_overlap_converges_in_fewer_iterations(self, laplace_problem):
        """The classical Schwarz convergence/overlap trade-off (Section 2.3)."""

        grid, boundary, reference = laplace_problem
        small = AlternatingSchwarz(grid, uniform_decomposition(grid, (2, 2), overlap=2)).run(
            boundary, max_iterations=100, tol=1e-9
        )
        large = AlternatingSchwarz(grid, uniform_decomposition(grid, (2, 2), overlap=8)).run(
            boundary, max_iterations=100, tol=1e-9
        )
        assert large.iterations < small.iterations

    def test_points_solved_per_iteration_exceeds_mosaic_interfaces(self, laplace_problem):
        """Classical ASM recomputes all subdomain points; MFP only the interfaces."""

        grid, boundary, _ = laplace_problem
        windows = uniform_decomposition(grid, (2, 2), overlap=4)
        schwarz = AlternatingSchwarz(grid, windows)
        from repro.mosaic import MosaicGeometry

        geo = MosaicGeometry(subdomain_points=9, subdomain_extent=0.5, steps_x=8, steps_y=8)
        interface_points = (
            len(geo.center_line_local_indices()[0]) * len(geo.anchors_for_phase(0))
        )
        assert schwarz.points_solved_per_iteration > interface_points

    def test_mode_validation(self, laplace_problem):
        grid, *_ = laplace_problem
        with pytest.raises(ValueError):
            AlternatingSchwarz(grid, uniform_decomposition(grid, (2, 2), 2), mode="hybrid")
        with pytest.raises(ValueError):
            AlternatingSchwarz(grid, [])
