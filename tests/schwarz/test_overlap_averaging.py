"""Additive vs. alternating Schwarz: overlap treatment semantics.

The two classical variants differ exactly in how the overlapping region is
updated: the alternating (multiplicative) sweep lets the *last* subdomain
solve win, while the additive variant solves every subdomain from the same
previous state and *averages* the overlapping predictions — the structure the
distributed Mosaic Flow assembly inherits.  These tests pin that behaviour
after a single iteration, where it is analytically checkable.
"""

import numpy as np
import pytest

from repro.fd import Grid2D, solve_laplace
from repro.pde import HARMONIC_FUNCTIONS
from repro.schwarz import AlternatingSchwarz, uniform_decomposition


@pytest.fixture(scope="module")
def problem():
    grid = Grid2D(17, 17)
    exact = grid.field_from_function(HARMONIC_FUNCTIONS["saddle"])
    boundary = np.where(grid.boundary_mask(), exact, 0.0)
    windows = uniform_decomposition(grid, (1, 2), overlap=3)
    return grid, boundary, windows


def _local_solve(grid, field, window):
    subgrid = grid.subgrid(window.row_start, window.col_start, *window.shape)
    local_bc = field[window.row_start: window.row_stop,
                     window.col_start: window.col_stop]
    return solve_laplace(subgrid, local_bc, method="direct")


class TestOneIterationSemantics:
    def test_additive_averages_the_overlap(self, problem):
        grid, boundary, windows = problem
        schwarz = AlternatingSchwarz(grid, windows, mode="additive")
        result = schwarz.run(boundary, max_iterations=1, tol=0.0)

        # Reproduce the iteration by hand: both local solves start from the
        # same zero-initialized state; overlapping interiors are averaged.
        start = np.where(grid.boundary_mask(), boundary, 0.0)
        accumulator = np.zeros_like(start)
        counts = np.zeros_like(start)
        for window in windows:
            local = _local_solve(grid, start, window)
            accumulator[window.row_start + 1: window.row_stop - 1,
                        window.col_start + 1: window.col_stop - 1] += local[1:-1, 1:-1]
            counts[window.row_start + 1: window.row_stop - 1,
                   window.col_start + 1: window.col_stop - 1] += 1.0
        expected = start.copy()
        updated = counts > 0
        expected[updated] = accumulator[updated] / counts[updated]
        expected[grid.boundary_mask()] = boundary[grid.boundary_mask()]

        np.testing.assert_allclose(result.solution, expected, atol=1e-12)
        # the overlap really is contested: both windows write there
        assert counts.max() == 2.0

    def test_alternating_lets_the_last_solve_win(self, problem):
        grid, boundary, windows = problem
        schwarz = AlternatingSchwarz(grid, windows, mode="multiplicative")
        result = schwarz.run(boundary, max_iterations=1, tol=0.0)

        # Sweep by hand: window 1 solves from the state window 0 produced,
        # and overwrites the shared interior columns.
        field = np.where(grid.boundary_mask(), boundary, 0.0)
        for window in windows:
            local = _local_solve(grid, field, window)
            field[window.row_start + 1: window.row_stop - 1,
                  window.col_start + 1: window.col_stop - 1] = local[1:-1, 1:-1]
        np.testing.assert_allclose(result.solution, field, atol=1e-12)

    def test_variants_disagree_on_overlap_then_converge_together(self, problem):
        grid, boundary, windows = problem
        additive = AlternatingSchwarz(grid, windows, mode="additive")
        alternating = AlternatingSchwarz(grid, windows, mode="multiplicative")

        one_add = additive.run(boundary, max_iterations=1, tol=0.0).solution
        one_alt = alternating.run(boundary, max_iterations=1, tol=0.0).solution
        overlap_cols = slice(windows[1].col_start + 1, windows[0].col_stop - 1)
        assert not np.allclose(one_add[1:-1, overlap_cols], one_alt[1:-1, overlap_cols])

        # both contract to the same global solution
        reference = solve_laplace(grid, boundary, method="direct")
        for schwarz in (additive, alternating):
            solution = schwarz.run(boundary, max_iterations=80, tol=1e-10).solution
            assert np.max(np.abs(solution - reference)) < 1e-6
