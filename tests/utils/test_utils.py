"""Utility helpers: seeded RNG spawning and timers."""

import time

import numpy as np
import pytest

from repro.utils import Timer, Timings, seeded_rng, spawn_rngs


class TestRng:
    def test_seeded_rng_reproducible(self):
        assert seeded_rng(7).integers(0, 100, 5).tolist() == seeded_rng(7).integers(0, 100, 5).tolist()

    def test_spawn_rngs_are_independent(self):
        streams = spawn_rngs(3, 4)
        assert len(streams) == 4
        draws = [s.standard_normal(8) for s in streams]
        for i in range(4):
            for j in range(i + 1, 4):
                assert not np.allclose(draws[i], draws[j])

    def test_spawn_rngs_reproducible(self):
        a = spawn_rngs(11, 2)
        b = spawn_rngs(11, 2)
        assert np.allclose(a[0].standard_normal(4), b[0].standard_normal(4))

    def test_spawn_count_validation(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, 0)


class TestTimers:
    def test_timer_measures_elapsed(self):
        timer = Timer()
        with timer:
            time.sleep(0.01)
        assert timer.elapsed >= 0.009

    def test_timer_accumulates(self):
        timer = Timer()
        with timer:
            pass
        first = timer.elapsed
        with timer:
            pass
        assert timer.elapsed >= first

    def test_timer_requires_start(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_timings_categories(self):
        timings = Timings()
        with timings.measure("compute"):
            time.sleep(0.005)
        timings.add("communication", 0.5)
        assert timings["compute"] > 0
        assert timings.total() == pytest.approx(timings["compute"] + 0.5)
        assert set(timings.as_dict()) == {"compute", "communication"}

    def test_timings_dict_compatible_access(self):
        timings = Timings()
        timings["inference"] = 1.5
        timings["inference"] = timings.get("inference", 0.0) + 0.5
        assert timings["inference"] == 2.0
        assert "inference" in timings and "other" not in timings
        assert timings.get("other") == 0.0
        assert timings["missing"] == 0.0  # defaultdict semantics preserved

    def test_timings_snapshot_and_merge(self):
        a, b = Timings(), Timings()
        a.add("inference", 1.0)
        b.add("inference", 2.0)
        b.add("allgather", 0.5)
        a.merge(b)
        assert a.snapshot() == {"inference": 3.0, "allgather": 0.5}
        a.merge({"assembly": 0.25})
        assert a["assembly"] == 0.25
        # Snapshot is a copy: mutating it does not write through.
        snap = a.snapshot()
        snap["inference"] = 99.0
        assert a["inference"] == 3.0

    def test_timings_concurrent_accumulation_is_exact(self):
        import threading

        timings = Timings()

        def worker():
            for _ in range(1000):
                timings.add("work", 0.001)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert timings["work"] == pytest.approx(8.0)

    def test_timings_measure_emits_span(self):
        from repro.obs import disable_tracing, enable_tracing

        tracer = enable_tracing()
        try:
            timings = Timings()
            with timings.measure("assembly"):
                pass
            assert [r.name for r in tracer.roots] == ["assembly"]
            assert timings["assembly"] >= 0.0
        finally:
            disable_tracing()
