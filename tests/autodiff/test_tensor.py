"""Tests for the Tensor class, gradient modes and memory tracking."""

import numpy as np
import pytest

from repro.autodiff import (
    GraphMemoryTracker,
    Tensor,
    astensor,
    enable_grad,
    is_grad_enabled,
    no_grad,
    ops,
)


class TestTensorBasics:
    def test_construction_from_list(self):
        t = Tensor([1.0, 2.0, 3.0])
        assert t.shape == (3,)
        assert t.dtype == np.float64
        assert not t.requires_grad

    def test_construction_from_array_casts_dtype(self):
        t = Tensor(np.array([1, 2, 3], dtype=np.int32))
        assert t.dtype == np.float64

    def test_construction_from_tensor_shares_nothing_weird(self):
        a = Tensor([1.0, 2.0])
        b = Tensor(a)
        assert np.allclose(a.data, b.data)

    def test_scalar_item(self):
        assert Tensor(3.5).item() == pytest.approx(3.5)

    def test_len_and_size(self):
        t = Tensor(np.zeros((4, 5)))
        assert len(t) == 4
        assert t.size == 20
        assert t.ndim == 2

    def test_detach_breaks_graph(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = (x * 2.0).detach()
        assert not y.requires_grad
        assert y.is_leaf

    def test_copy_is_independent(self):
        x = Tensor([1.0, 2.0])
        y = x.copy()
        y.data[0] = 99.0
        assert x.data[0] == 1.0

    def test_leaf_property(self):
        x = Tensor([1.0], requires_grad=True)
        y = x * 2.0
        assert x.is_leaf
        assert not y.is_leaf

    def test_repr_contains_requires_grad(self):
        assert "requires_grad" in repr(Tensor([1.0], requires_grad=True))


class TestGradMode:
    def test_default_enabled(self):
        assert is_grad_enabled()

    def test_no_grad_disables_tracking(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            assert not is_grad_enabled()
            y = x * 3.0
        assert not y.requires_grad
        assert y.is_leaf

    def test_nested_grad_modes_restore(self):
        with no_grad():
            with enable_grad():
                assert is_grad_enabled()
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_grad_mode_is_exception_safe(self):
        try:
            with no_grad():
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert is_grad_enabled()


class TestAstensor:
    def test_passthrough(self):
        t = Tensor([1.0])
        assert astensor(t) is t

    def test_wraps_scalars_and_lists(self):
        assert astensor(2.0).shape == ()
        assert astensor([1.0, 2.0]).shape == (2,)


class TestGraphMemoryTracker:
    def test_records_graph_tensors_only_when_grad_needed(self):
        with GraphMemoryTracker() as tracker:
            a = Tensor(np.ones(100))
            b = a * 2.0  # no requires_grad anywhere -> not recorded
        assert tracker.graph_bytes == 0

        with GraphMemoryTracker() as tracker:
            a = Tensor(np.ones(100), requires_grad=True)
            b = a * 2.0
            c = b + 1.0
        assert tracker.graph_bytes >= 2 * 100 * 8
        assert tracker.tensor_count >= 2

    def test_pde_loss_graph_is_larger(self, small_sdnet, rng):
        from repro.pde.losses import PinnLoss

        g = Tensor(rng.normal(size=(2, small_sdnet.boundary_size)))
        x = Tensor(rng.uniform(size=(2, 8, 2)))
        u = Tensor(rng.normal(size=(2, 8)))
        with GraphMemoryTracker() as without:
            PinnLoss(use_pde_loss=False)(small_sdnet, g, x, u, None)
        with GraphMemoryTracker() as with_pde:
            PinnLoss(use_pde_loss=True)(small_sdnet, g, x, u, x)
        assert with_pde.graph_bytes > without.graph_bytes
