"""Tests for grad / backward / jacobian and gradient accumulation semantics."""

import numpy as np
import pytest

from repro.autodiff import Tensor, backward, grad, jacobian, ops
from repro.autodiff.functional import gradcheck


class TestGrad:
    def test_simple_polynomial(self):
        x = Tensor(np.array([2.0, -1.0]), requires_grad=True)
        y = ops.sum(x ** 3.0)
        (g,) = grad(y, [x])
        assert np.allclose(g.data, 3.0 * x.data ** 2)

    def test_multiple_inputs(self):
        a = Tensor(np.array([[1.0, 2.0]]), requires_grad=True)
        b = Tensor(np.array([[3.0], [4.0]]), requires_grad=True)
        y = ops.sum(ops.matmul(a, b))
        ga, gb = grad(y, [a, b])
        assert np.allclose(ga.data, b.data.T)
        assert np.allclose(gb.data, a.data.T)

    def test_unused_input_gets_zeros(self):
        a = Tensor([1.0], requires_grad=True)
        b = Tensor([2.0], requires_grad=True)
        y = ops.sum(a * 2.0)
        ga, gb = grad(y, [a, b])
        assert np.allclose(gb.data, 0.0)

    def test_unused_input_raises_when_not_allowed(self):
        a = Tensor([1.0], requires_grad=True)
        b = Tensor([2.0], requires_grad=True)
        y = ops.sum(a * 2.0)
        with pytest.raises(RuntimeError):
            grad(y, [a, b], allow_unused=False)

    def test_non_scalar_requires_grad_output(self):
        x = Tensor(np.ones(3), requires_grad=True)
        y = x * 2.0
        with pytest.raises(ValueError):
            grad(y, [x])
        (g,) = grad(y, [x], grad_output=Tensor(np.array([1.0, 0.0, 2.0])))
        assert np.allclose(g.data, [2.0, 0.0, 4.0])

    def test_single_input_convenience(self):
        x = Tensor([3.0], requires_grad=True)
        (g,) = grad(ops.sum(x * x), x)
        assert np.allclose(g.data, [6.0])

    def test_diamond_graph_accumulates(self):
        x = Tensor([2.0], requires_grad=True)
        a = x * 3.0
        b = x * 5.0
        y = ops.sum(a + b)
        (g,) = grad(y, [x])
        assert np.allclose(g.data, [8.0])

    def test_reused_tensor_in_expression(self):
        x = Tensor([1.5], requires_grad=True)
        y = ops.sum(x * x * x)
        (g,) = grad(y, [x])
        assert np.allclose(g.data, 3.0 * 1.5 ** 2)


class TestBackward:
    def test_populates_leaf_grads(self):
        x = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        w = Tensor(np.array([3.0, 4.0]), requires_grad=True)
        loss = ops.sum(x * w)
        backward(loss)
        assert np.allclose(x.grad.data, w.data)
        assert np.allclose(w.grad.data, x.data)

    def test_accumulates_on_repeated_backward(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        for _ in range(3):
            loss = ops.sum(x * 2.0)
            backward(loss)
        assert np.allclose(x.grad.data, [6.0])

    def test_tensor_backward_method(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        (x * x).sum().backward()
        assert np.allclose(x.grad.data, [4.0])

    def test_non_scalar_backward_requires_seed(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(ValueError):
            backward(x * 2.0)


class TestJacobian:
    def test_linear_map_jacobian(self):
        W = np.random.default_rng(0).normal(size=(3, 4))

        def fn(x):
            return ops.matmul(Tensor(W), ops.reshape(x, (4, 1)))

        x = Tensor(np.random.default_rng(1).normal(size=4))
        J = jacobian(fn, x)
        assert J.shape == (3, 4)
        assert np.allclose(J, W)

    def test_elementwise_jacobian_is_diagonal(self):
        x = Tensor(np.array([0.5, 1.0, 2.0]))
        J = jacobian(lambda t: ops.tanh(t), x)
        assert np.allclose(J, np.diag(1.0 - np.tanh(x.data) ** 2))


class TestGradcheckSelf:
    def test_gradcheck_detects_wrong_gradient(self):
        # A deliberately broken "gradient": compare tanh against the gradient of sin.
        calls = {"n": 0}

        def bad(x):
            # value depends on x but via a detached path half the time -> mismatch
            return ops.sum(ops.tanh(Tensor(x.data * 2.0)) + x * 0.0)

        with pytest.raises(AssertionError):
            gradcheck(bad, [Tensor(np.array([0.3, 0.7]))])

    def test_gradcheck_requires_scalar(self):
        with pytest.raises(ValueError):
            gradcheck(lambda x: x * 2.0, [Tensor(np.ones(3))])
