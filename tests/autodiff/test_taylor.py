"""Forward Taylor-mode second derivatives vs. nested reverse mode."""

import numpy as np
import pytest

from repro.autodiff import Tensor, grad, ops
from repro.autodiff.taylor import TaylorTriple, taylor_constant, taylor_seed
from repro.nn import GELU, Tanh


class TestTaylorTripleAlgebra:
    def test_addition_of_triples(self):
        a = taylor_seed(Tensor(np.array([1.0, 2.0])), np.array([1.0, 1.0]))
        b = taylor_constant(Tensor(np.array([3.0, 4.0])))
        c = a + b
        assert np.allclose(c.value.data, [4.0, 6.0])
        assert np.allclose(c.d1.data, [1.0, 1.0])
        assert np.allclose(c.d2.data, [0.0, 0.0])

    def test_product_rule_second_order(self):
        # f = t^2 along direction 1 seeded at value t: (t*t) -> d1=2t, d2=2.
        t = np.array([0.7, -1.2])
        x = taylor_seed(Tensor(t), np.array(1.0))
        prod = x * x
        assert np.allclose(prod.d1.data, 2 * t)
        assert np.allclose(prod.d2.data, 2.0)

    def test_scalar_multiplication(self):
        x = taylor_seed(Tensor(np.array([2.0])), np.array(1.0))
        y = 3.0 * x
        assert np.allclose(y.d1.data, [3.0])
        assert np.allclose(y.d2.data, [0.0])

    def test_matmul_propagates_linearly(self):
        W = Tensor(np.random.default_rng(0).normal(size=(3, 2)))
        x = taylor_seed(Tensor(np.random.default_rng(1).normal(size=(4, 3))), np.array(1.0))
        y = x.matmul(W)
        assert y.value.shape == (4, 2)
        assert np.allclose(y.d1.data, np.ones((4, 3)) @ W.data)
        assert np.allclose(y.d2.data, 0.0)

    @pytest.mark.parametrize("act", [GELU(), Tanh()])
    def test_activation_chain_rule(self, act):
        # phi(t^2): d2/dt^2 = phi''(t^2)*(2t)^2 + phi'(t^2)*2
        t = 0.6
        x = taylor_seed(Tensor(np.array([t])), np.array(1.0))
        squared = x * x
        out = squared.apply_activation(act.forward, act.derivative, act.second_derivative)
        v = Tensor(np.array([t * t]))
        expected = (
            act.second_derivative(v).data * (2 * t) ** 2 + act.derivative(v).data * 2.0
        )
        assert np.allclose(out.d2.data, expected, rtol=1e-10)


class TestTaylorVsAutograd:
    def test_sdnet_laplacian_paths_agree(self, small_sdnet, rng):
        g = Tensor(rng.normal(size=(3, small_sdnet.boundary_size)))
        x = Tensor(rng.uniform(size=(3, 6, 2)) * 0.5)
        lap_taylor = small_sdnet.laplacian(g, x, method="taylor")
        lap_autograd = small_sdnet.laplacian(g, x, method="autograd")
        assert np.allclose(lap_taylor.data, lap_autograd.data, atol=1e-12)

    def test_parameter_gradients_agree_between_paths(self, small_sdnet, rng):
        g = Tensor(rng.normal(size=(2, small_sdnet.boundary_size)))
        x = Tensor(rng.uniform(size=(2, 4, 2)) * 0.5)
        params = small_sdnet.parameters()

        loss_t = ops.mean(small_sdnet.laplacian(g, x, method="taylor") ** 2.0)
        grads_t = grad(loss_t, params)
        loss_a = ops.mean(small_sdnet.laplacian(g, x, method="autograd") ** 2.0)
        grads_a = grad(loss_a, params)
        for gt, ga in zip(grads_t, grads_a):
            assert np.allclose(gt.data, ga.data, atol=1e-10)

    def test_taylor_graph_is_smaller_than_double_backward(self, small_sdnet, rng):
        from repro.autodiff import GraphMemoryTracker

        g = Tensor(rng.normal(size=(2, small_sdnet.boundary_size)))
        x = Tensor(rng.uniform(size=(2, 16, 2)) * 0.5)
        with GraphMemoryTracker() as taylor_tracker:
            ops.mean(small_sdnet.laplacian(g, x, method="taylor") ** 2.0)
        with GraphMemoryTracker() as autograd_tracker:
            ops.mean(small_sdnet.laplacian(g, x, method="autograd") ** 2.0)
        assert taylor_tracker.graph_bytes < autograd_tracker.graph_bytes
