"""Higher-order differentiation: the capability the PDE loss depends on."""

import numpy as np
import pytest

from repro.autodiff import Tensor, grad, ops


def second_derivative(fn, x0: float) -> float:
    """d^2 fn / dx^2 at ``x0`` via two nested reverse-mode sweeps."""

    x = Tensor(np.array([x0]), requires_grad=True)
    y = fn(x)
    (g1,) = grad(ops.sum(y), [x], create_graph=True)
    (g2,) = grad(ops.sum(g1), [x])
    return float(g2.data[0])


class TestSecondDerivatives:
    @pytest.mark.parametrize(
        "fn, d2, x0",
        [
            (lambda x: x ** 4.0, lambda x: 12.0 * x ** 2, 1.3),
            (lambda x: ops.exp(x), np.exp, 0.4),
            (lambda x: ops.sin(x), lambda x: -np.sin(x), 0.9),
            (lambda x: ops.tanh(x), lambda x: -2 * np.tanh(x) * (1 - np.tanh(x) ** 2), 0.2),
            (lambda x: ops.log(x + 2.0), lambda x: -1.0 / (x + 2.0) ** 2, 0.5),
        ],
    )
    def test_analytic_second_derivatives(self, fn, d2, x0):
        assert second_derivative(fn, x0) == pytest.approx(d2(x0), rel=1e-8)

    def test_gelu_second_derivative_matches_finite_difference(self):
        from scipy.special import erf

        def gelu(t):
            return 0.5 * t * (1.0 + ops.erf(t / np.sqrt(2.0)))

        def gelu_np(v):
            return 0.5 * v * (1 + erf(v / np.sqrt(2)))

        x0, eps = 0.37, 1e-5
        numeric = (gelu_np(x0 + eps) - 2 * gelu_np(x0) + gelu_np(x0 - eps)) / eps ** 2
        assert second_derivative(gelu, x0) == pytest.approx(numeric, rel=1e-5)

    def test_laplacian_of_polynomial_field(self):
        # u(x, y) = x^2 y + y^3 -> u_xx + u_yy = 2y + 6y
        pts = Tensor(np.array([[0.3, 0.7], [1.0, -2.0]]), requires_grad=True)
        u = pts[:, 0] ** 2.0 * pts[:, 1] + pts[:, 1] ** 3.0
        (g,) = grad(ops.sum(u), [pts], create_graph=True)
        (gxx,) = grad(ops.sum(g[:, 0]), [pts], create_graph=True)
        (gyy,) = grad(ops.sum(g[:, 1]), [pts], create_graph=True)
        lap = gxx.data[:, 0] + gyy.data[:, 1]
        expected = 2 * pts.data[:, 1] + 6 * pts.data[:, 1]
        assert np.allclose(lap, expected)

    def test_harmonic_function_has_zero_laplacian(self):
        # u = x^2 - y^2 is harmonic.
        pts = Tensor(np.random.default_rng(0).normal(size=(5, 2)), requires_grad=True)
        u = pts[:, 0] ** 2.0 - pts[:, 1] ** 2.0
        (g,) = grad(ops.sum(u), [pts], create_graph=True)
        (gxx,) = grad(ops.sum(g[:, 0]), [pts], create_graph=True)
        (gyy,) = grad(ops.sum(g[:, 1]), [pts], create_graph=True)
        assert np.allclose(gxx.data[:, 0] + gyy.data[:, 1], 0.0, atol=1e-12)


class TestThirdOrderChains:
    def test_parameter_gradient_of_a_laplacian(self):
        # u = w * x^3: laplacian_x = 6 w x, d(laplacian)/dw = 6x.
        w = Tensor(np.array(2.0), requires_grad=True)
        x = Tensor(np.array([[0.5]]), requires_grad=True)
        u = w * x ** 3.0
        (g1,) = grad(ops.sum(u), [x], create_graph=True)
        (g2,) = grad(ops.sum(g1), [x], create_graph=True)
        (gw,) = grad(ops.sum(g2), [w])
        assert gw.data == pytest.approx(6.0 * 0.5)

    def test_pde_residual_gradient_matches_finite_difference(self, small_sdnet, rng):
        """d/dtheta of the mean squared Laplacian, checked against finite differences."""

        from repro.pde.losses import laplace_residual_loss

        g = Tensor(rng.normal(size=(1, small_sdnet.boundary_size)))
        x = Tensor(rng.uniform(size=(1, 3, 2)) * 0.4)
        params = small_sdnet.parameters()
        loss = laplace_residual_loss(small_sdnet, g, x, method="autograd")
        grads = grad(loss, params)

        # Check one scalar entry of one parameter with central differences.
        target = params[2]
        idx = (0, 0) if target.ndim == 2 else (0,)
        eps = 1e-5
        original = target.data[idx]
        target.data[idx] = original + eps
        plus = laplace_residual_loss(small_sdnet, g, x, method="autograd").item()
        target.data[idx] = original - eps
        minus = laplace_residual_loss(small_sdnet, g, x, method="autograd").item()
        target.data[idx] = original
        numeric = (plus - minus) / (2 * eps)
        assert grads[2].data[idx] == pytest.approx(numeric, rel=1e-4, abs=1e-8)
