"""Gradient correctness of every primitive operation (finite differences)."""

import numpy as np
import pytest

from repro.autodiff import Tensor, gradcheck, ops


def rand(shape, seed=0, scale=1.0, shift=0.0):
    return Tensor(np.random.default_rng(seed).uniform(size=shape) * scale + shift)


class TestElementwiseBinary:
    def test_add(self):
        assert gradcheck(lambda a, b: ops.sum(a + b), [rand((3, 4)), rand((3, 4), 1)])

    def test_add_broadcast(self):
        assert gradcheck(lambda a, b: ops.sum(a + b), [rand((3, 4)), rand((4,), 1)])

    def test_sub(self):
        assert gradcheck(lambda a, b: ops.sum(a - b), [rand((2, 3)), rand((2, 3), 1)])

    def test_mul(self):
        assert gradcheck(lambda a, b: ops.sum(a * b), [rand((3, 3)), rand((3, 3), 1)])

    def test_mul_broadcast_scalar(self):
        assert gradcheck(lambda a: ops.sum(a * 3.5), [rand((3, 3))])

    def test_div(self):
        assert gradcheck(
            lambda a, b: ops.sum(a / b), [rand((3, 3)), rand((3, 3), 1, shift=0.5)]
        )

    def test_values_match_numpy(self):
        a, b = rand((2, 2)), rand((2, 2), 5, shift=0.5)
        assert np.allclose((a + b).data, a.data + b.data)
        assert np.allclose((a - b).data, a.data - b.data)
        assert np.allclose((a * b).data, a.data * b.data)
        assert np.allclose((a / b).data, a.data / b.data)

    def test_reverse_operators(self):
        a = rand((2, 2))
        assert np.allclose((2.0 + a).data, 2.0 + a.data)
        assert np.allclose((2.0 - a).data, 2.0 - a.data)
        assert np.allclose((2.0 * a).data, 2.0 * a.data)
        assert np.allclose((2.0 / (a + 1.0)).data, 2.0 / (a.data + 1.0))


class TestElementwiseUnary:
    @pytest.mark.parametrize(
        "fn",
        [ops.neg, ops.exp, ops.tanh, ops.erf, ops.sin, ops.cos, ops.abs, ops.maximum_zero],
    )
    def test_unary_gradients(self, fn):
        x = rand((4, 3), seed=2, scale=2.0, shift=-1.0)
        # Keep abs/relu away from the non-differentiable point.
        x = Tensor(np.where(np.abs(x.data) < 0.05, 0.2, x.data))
        assert gradcheck(lambda a: ops.sum(fn(a) * 1.3), [x])

    def test_pow_gradient(self):
        assert gradcheck(lambda a: ops.sum(ops.pow(a, 3.0)), [rand((3, 3), shift=0.2)])

    def test_log_and_sqrt(self):
        x = rand((3, 3), shift=0.5)
        assert gradcheck(lambda a: ops.sum(ops.log(a)), [x])
        assert gradcheck(lambda a: ops.sum(ops.sqrt(a)), [x])

    def test_erf_values(self):
        from scipy.special import erf as scipy_erf

        x = rand((5,))
        assert np.allclose(ops.erf(x).data, scipy_erf(x.data))

    def test_clip_gradient_is_zero_outside(self):
        from repro.autodiff import grad

        x = Tensor(np.array([-2.0, 0.5, 3.0]), requires_grad=True)
        y = ops.sum(ops.clip(x, 0.0, 1.0))
        (g,) = grad(y, [x])
        assert np.allclose(g.data, [0.0, 1.0, 0.0])

    def test_where_mask(self):
        from repro.autodiff import grad

        mask = np.array([True, False, True])
        a = Tensor(np.array([1.0, 2.0, 3.0]), requires_grad=True)
        b = Tensor(np.array([10.0, 20.0, 30.0]), requires_grad=True)
        y = ops.sum(ops.where_mask(mask, a, b))
        ga, gb = grad(y, [a, b])
        assert np.allclose(ga.data, [1.0, 0.0, 1.0])
        assert np.allclose(gb.data, [0.0, 1.0, 0.0])


class TestLinalgAndReductions:
    def test_matmul_gradients(self):
        assert gradcheck(
            lambda a, b: ops.sum(ops.matmul(a, b)), [rand((3, 4)), rand((4, 2), 1)]
        )

    def test_batched_matmul_gradients(self):
        assert gradcheck(
            lambda a, b: ops.sum(ops.matmul(a, b)),
            [rand((2, 3, 4)), rand((4, 5), 1)],
        )

    def test_matmul_rejects_vectors(self):
        with pytest.raises(ValueError):
            ops.matmul(rand((3,)), rand((3, 2)))

    def test_sum_axis_variants(self):
        x = rand((3, 4, 5))
        assert ops.sum(x).shape == ()
        assert ops.sum(x, axis=1).shape == (3, 5)
        assert ops.sum(x, axis=(0, 2)).shape == (4,)
        assert ops.sum(x, axis=1, keepdims=True).shape == (3, 1, 5)

    def test_sum_gradients(self):
        assert gradcheck(lambda a: ops.sum(ops.sum(a, axis=0) * 2.0), [rand((3, 4))])
        assert gradcheck(
            lambda a: ops.sum(ops.sum(a, axis=(0, 2), keepdims=True)), [rand((2, 3, 4))]
        )

    def test_mean_matches_numpy(self):
        x = rand((4, 6))
        assert np.allclose(ops.mean(x).data, x.data.mean())
        assert np.allclose(ops.mean(x, axis=0).data, x.data.mean(axis=0))

    def test_mean_gradient(self):
        assert gradcheck(lambda a: ops.mean(a * a), [rand((5, 3))])


class TestShapeOps:
    def test_reshape_roundtrip_gradient(self):
        assert gradcheck(
            lambda a: ops.sum(ops.reshape(a, (6, 2)) * 2.0), [rand((3, 4))]
        )

    def test_transpose_gradient(self):
        assert gradcheck(
            lambda a: ops.sum(ops.transpose(a, (1, 2, 0)) * 1.5), [rand((2, 3, 4))]
        )

    def test_swapaxes(self):
        x = rand((2, 3, 4))
        assert ops.swapaxes(x, 0, 2).shape == (4, 3, 2)

    def test_broadcast_to_gradient(self):
        assert gradcheck(
            lambda a: ops.sum(ops.broadcast_to(a, (4, 3)) * 2.0), [rand((1, 3))]
        )

    def test_concatenate_and_stack(self):
        a, b = rand((2, 3)), rand((4, 3), 1)
        assert ops.concatenate([a, b], axis=0).shape == (6, 3)
        assert ops.stack([rand((2, 3)), rand((2, 3), 1)], axis=0).shape == (2, 2, 3)

    def test_concatenate_gradient(self):
        assert gradcheck(
            lambda a, b: ops.sum(ops.concatenate([a, b], axis=1) ** 2.0),
            [rand((2, 3)), rand((2, 2), 1)],
        )

    def test_pad_gradient(self):
        assert gradcheck(
            lambda a: ops.sum(ops.pad(a, ((1, 1), (2, 0))) * 3.0), [rand((2, 3))]
        )

    def test_getitem_slice_gradient(self):
        assert gradcheck(lambda a: ops.sum(a[1:, :2] * 2.0), [rand((4, 4))])

    def test_getitem_fancy_index_gradient(self):
        idx = np.array([[0, 2], [1, 3]])
        assert gradcheck(lambda a: ops.sum(a[:, idx]), [rand((2, 5))])

    def test_scatter_add_is_adjoint_of_getitem(self):
        g = rand((2, 2))
        idx = np.array([0, 3])
        scattered = ops.scatter_add(g, (slice(None), idx), (2, 5))
        assert scattered.shape == (2, 5)
        assert np.allclose(scattered.data[:, idx], g.data)
        assert np.allclose(np.delete(scattered.data, idx, axis=1), 0.0)
