"""Thread-safety of the gradient mode.

The simulated cluster runs each rank in its own thread; one rank entering
``no_grad`` (inference) or the graph-free part of a reverse sweep must not
disable recording for another rank that is concurrently building a graph.
This is a regression test for a race that produced silently wrong gradients
in multi-rank data-parallel training.
"""

import threading

import numpy as np

from repro.autodiff import Tensor, grad, no_grad, ops
from repro.distributed import ReduceOp, run_spmd


def _loss_and_grad(seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    w = Tensor(rng.normal(size=(6, 4)), requires_grad=True)
    x = Tensor(rng.normal(size=(8, 6)))
    # Interleave graph-building work with no_grad sections, as the trainer does.
    with no_grad():
        _ = ops.matmul(x, w)
    loss = ops.sum(ops.tanh(ops.matmul(x, w)) ** 2.0)
    (gw,) = grad(loss, [w])
    return gw.data


class TestGradModeIsThreadLocal:
    def test_concurrent_backward_matches_serial(self):
        serial = {seed: _loss_and_grad(seed) for seed in range(4)}

        results: dict[int, np.ndarray] = {}
        barrier = threading.Barrier(4)

        def worker(seed: int) -> None:
            barrier.wait()
            for _ in range(5):
                results[seed] = _loss_and_grad(seed)

        threads = [threading.Thread(target=worker, args=(seed,)) for seed in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for seed in range(4):
            assert np.allclose(results[seed], serial[seed])

    def test_no_grad_in_one_rank_does_not_leak_into_another(self):
        expected = _loss_and_grad(0)

        def program(comm):
            # Rank 1 spends its time inside no_grad (pure inference);
            # rank 0 computes gradients concurrently.
            if comm.rank == 1:
                rng = np.random.default_rng(1)
                with no_grad():
                    for _ in range(200):
                        a = Tensor(rng.normal(size=(16, 16)))
                        ops.sum(ops.tanh(ops.matmul(a, a)))
                local = np.zeros_like(expected)
            else:
                local = _loss_and_grad(0)
            total = comm.allreduce(local, op=ReduceOp.SUM)
            return total

        results = run_spmd(2, program)
        for total in results:
            assert np.allclose(total, expected)
