"""Observability demo: trace, meter and profile a served workload end to end.

The demo drives ``repro.obs`` across every layer it instruments:

1. enable tracing, stand up a :class:`repro.serving.Server` with the
   inference engine *and* per-kernel profiling on, and submit a stream of
   boundary value problems (with deliberate repeats so the cache
   participates),
2. print the hierarchical span tree of the served requests — queue wait,
   batch assembly, fused solve, per-rank workers, postprocess — plus a
   Chrome trace file loadable in ``chrome://tracing`` / Perfetto,
3. print the unified metrics snapshot (``Server.stats()``'s counters and
   bounded histograms) in both JSON and Prometheus text exposition,
4. print the engine's top-kernels report: where the compiled plans actually
   spent their time, per numpy kernel, with call counts and bytes moved,
5. print the tail-sampled flight records (the requests that finished above
   the rolling latency quantile, with their span trees and attribution),
   the per-owner memory accounting, and the ``Server.health()`` snapshot
   with its multi-window SLO burn rates.

Run with::

    python examples/observability_demo.py [--requests 24] [--seed 0]
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.data import generate_dataset
from repro.models import SDNet
from repro.mosaic import MosaicGeometry, SDNetSubdomainSolver
from repro.obs import (
    FlightRecorder,
    disable_memory_accounting,
    disable_tracing,
    enable_memory_accounting,
    enable_tracing,
    to_json,
    to_prometheus,
)
from repro.serving import Server, SolveRequest
from repro.training import Trainer, TrainingConfig
from repro.utils import seeded_rng

SUBDOMAIN_POINTS = 9
SUBDOMAIN_EXTENT = 0.5


def train_small_sdnet(seed: int) -> SDNet:
    """A briefly trained SDNet (the demo is about observing, not accuracy)."""

    dataset = generate_dataset(
        num_samples=32, resolution=SUBDOMAIN_POINTS,
        extent=(SUBDOMAIN_EXTENT, SUBDOMAIN_EXTENT), seed=seed,
    )
    train, val = dataset.split(validation_fraction=0.125, seed=seed)
    model = SDNet(
        boundary_size=dataset.grid.boundary_size, hidden_size=24,
        trunk_layers=2, embedding_channels=(2,), rng=seed,
    )
    config = TrainingConfig(
        epochs=2, batch_size=8, data_points_per_domain=32,
        collocation_points_per_domain=16, max_lr=3e-3, seed=seed,
    )
    Trainer(model, config, train, val).fit()
    return model


def request_stream(geometry, count: int, seed: int):
    """Random harmonic-mix BVPs with ~25% repeated queries."""

    rng = seeded_rng(seed)
    loops = []
    for index in range(count):
        if loops and rng.uniform() < 0.25:
            loops.append(loops[rng.integers(0, len(loops))])
            continue
        w = rng.normal(size=3)
        loops.append(
            geometry.boundary_from_function(
                lambda x, y: w[0] * (x * x - y * y) + w[1] * x * y + w[2] * (x - y)
            )
        )
    return loops


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=24)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--trace-out", default="observability_trace.json",
        help="Chrome trace-event output file (open in chrome://tracing)",
    )
    args = parser.parse_args()

    print("training a small SDNet (a few seconds) ...")
    model = train_small_sdnet(args.seed)
    geometry = MosaicGeometry(
        subdomain_points=SUBDOMAIN_POINTS, subdomain_extent=SUBDOMAIN_EXTENT,
        steps_x=4, steps_y=4,
    )
    loops = request_stream(geometry, args.requests, args.seed)

    # 1. tracing + memory accounting on; engine + per-kernel profiling on;
    #    flight recorder tail-samples above the rolling median so a quiet
    #    demo run still retains a few "slow" traces to show.
    tracer = enable_tracing()
    accountant = enable_memory_accounting()
    server = Server(
        solver_factory=lambda geom: SDNetSubdomainSolver(model),
        world_size=2,
        engine=True,
        engine_profile=True,
        flight=FlightRecorder(min_samples=8, latency_quantile=50.0),
    )
    for loop in loops:
        server.submit(SolveRequest.create(geometry, loop, tol=1e-6, max_iterations=60))
    server.drain()

    # 2. the span trees (most recent 8 roots keeps the terminal readable).
    print("\n=== span tree (last 8 roots) ===")
    print(tracer.span_tree(max_roots=8))
    tracer.write_chrome_trace(args.trace_out)
    print(f"\nfull Chrome trace ({tracer.span_count()} spans) -> {args.trace_out}")

    # 3. unified metrics: one snapshot, two renderings.
    stats = server.stats.as_dict()
    print("\n=== metrics snapshot (JSON) ===")
    print(to_json(stats["obs"]))
    print("\n=== metrics (Prometheus text exposition) ===")
    print(to_prometheus(stats["obs"]), end="")

    # 4. where the compiled plans spent their time.
    print("\n=== per-kernel profile ===")
    print(server.kernel_report())

    # 5. the tail: which requests were slow, why, and what they were doing.
    print("\n=== flight recorder (tail-sampled slow requests) ===")
    summary = server.flight.summary()
    threshold = summary["latency_threshold_seconds"]
    threshold = "n/a" if threshold is None else f"{threshold:.4f}s"
    print(f"retained {summary['retained']} of {args.requests} requests "
          f"(threshold {threshold}, by reason {summary['by_reason']})")
    for record in server.flight.records()[-2:]:
        print(f"\n--- {record.request_id} [{record.reason}] "
              f"{record.latency_seconds * 1e3:.1f}ms "
              f"occupancy={record.attrs.get('mega_occupancy')} ---")
        print(record.span_tree())

    print("\n=== memory accounting (bytes by owner) ===")
    print(accountant.report())

    print("\n=== Server.health() ===")
    health = server.health()
    print(f"status: {health['status']}  alerts: {health['alerts']}")
    print(f"bytes/request: {health['bytes_per_request']:.0f}")
    for objective, state in health["slo"].items():
        windows = ", ".join(
            f"{name}: attainment={w['attainment']} burn={w['burn_rate']}"
            for name, w in state["windows"].items()
        )
        print(f"  {objective} (target {state['target']}): {windows}")

    print("\n=== serving report ===")
    print(server.stats.report())
    disable_tracing()
    disable_memory_accounting()


if __name__ == "__main__":
    main()
