"""Quickstart: train an SDNet and solve a larger domain with Mosaic Flow.

This is the smallest end-to-end run of the reproduction pipeline:

1. generate a training dataset of Gaussian-process boundary conditions and
   finite-difference reference solutions on a small (0.5 x 0.5) subdomain,
2. train the physics-informed SDNet (data loss + Laplace residual loss),
3. use the trained network as the subdomain solver of the Mosaic Flow
   predictor to solve the Laplace equation on a domain four times larger —
   by inference only, with no retraining — and
4. compare against the numerical reference solution.

Run with::

    python examples/quickstart.py [--epochs 6] [--samples 64]

Everything is scaled down so the script finishes in a few minutes on a CPU.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.data import generate_dataset
from repro.fd import solve_laplace_from_loop
from repro.models import SDNet
from repro.mosaic import MosaicFlowPredictor, MosaicGeometry, SDNetSubdomainSolver
from repro.pde import sine_boundary_bvp
from repro.training import Trainer, TrainingConfig, mae


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--samples", type=int, default=64, help="training BVP instances")
    parser.add_argument("--epochs", type=int, default=6, help="training epochs")
    parser.add_argument("--resolution", type=int, default=9,
                        help="grid points per subdomain side (odd)")
    parser.add_argument("--hidden", type=int, default=32, help="SDNet hidden width")
    parser.add_argument("--seed", type=int, default=0)
    return parser.parse_args()


def main() -> None:
    args = parse_args()

    # ------------------------------------------------------------------ data
    print(f"[1/4] Generating {args.samples} boundary-value problems "
          f"on a {args.resolution}x{args.resolution} subdomain ...")
    tic = time.perf_counter()
    dataset = generate_dataset(
        num_samples=args.samples, resolution=args.resolution, extent=(0.5, 0.5),
        seed=args.seed,
    )
    train, val = dataset.split(validation_fraction=0.1, seed=args.seed)
    print(f"      done in {time.perf_counter() - tic:.1f} s "
          f"({len(train)} train / {len(val)} validation instances)")

    # -------------------------------------------------------------- training
    print("[2/4] Training the physics-informed SDNet ...")
    model = SDNet(
        boundary_size=dataset.grid.boundary_size,
        hidden_size=args.hidden,
        trunk_layers=2,
        embedding_channels=(4,),
        rng=args.seed,
    )
    config = TrainingConfig(
        epochs=args.epochs,
        batch_size=8,
        data_points_per_domain=32,
        collocation_points_per_domain=16,
        max_lr=3e-3,
        optimizer="lamb",
        seed=args.seed,
    )
    trainer = Trainer(model, config, train, val)
    tic = time.perf_counter()
    history = trainer.fit()
    print(f"      done in {time.perf_counter() - tic:.1f} s")
    for epoch, mse in enumerate(history.validation_mse, start=1):
        print(f"      epoch {epoch:2d}: validation MSE = {mse:.5f}")

    # ----------------------------------------------------------- Mosaic Flow
    print("[3/4] Solving a 4x-larger domain with the Mosaic Flow predictor ...")
    geometry = MosaicGeometry(
        subdomain_points=args.resolution, subdomain_extent=0.5, steps_x=4, steps_y=4
    )
    grid = geometry.global_grid()
    bvp = sine_boundary_bvp()
    boundary_loop = bvp.boundary_loop(grid)
    reference = solve_laplace_from_loop(grid, boundary_loop, method="direct")

    predictor = MosaicFlowPredictor(geometry, SDNetSubdomainSolver(model), batched=True)
    tic = time.perf_counter()
    result = predictor.run(boundary_loop, max_iterations=100, tol=1e-5, reference=reference)
    print(f"      {result.iterations} iterations in {time.perf_counter() - tic:.1f} s "
          f"(converged: {result.converged})")

    # ------------------------------------------------------------ evaluation
    print("[4/4] Comparing against the finite-difference reference ...")
    error = mae(result.solution, reference)
    print(f"      domain resolution : {grid.ny} x {grid.nx}")
    print(f"      atomic subdomains : {geometry.num_subdomains}")
    print(f"      MAE vs reference  : {error:.4f}")
    print(f"      max abs error     : {np.max(np.abs(result.solution - reference)):.4f}")
    print("\nIncrease --samples/--epochs (paper: 20,000 samples, 500 epochs) to tighten the error.")


if __name__ == "__main__":
    main()
