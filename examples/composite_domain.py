"""Composite domains: solve an L-shaped plate with Mosaic Flow.

The Mosaic Flow decomposition transfers a subdomain solver to *unseen*
target geometries; this example exercises the irregular case end to end:

1. build an L-shaped :class:`CompositeDomain` (a plate with a notch cut out
   of one corner) and its :class:`CompositeMosaicGeometry`,
2. solve a Laplace boundary value problem on it with the unchanged
   ``MosaicFlowPredictor`` — only anchors inside the domain are iterated and
   the Dirichlet data follows the true re-entrant boundary loop,
3. compare against the masked finite-difference reference solve, and
4. contrast the anchor/solve counts with the naive bounding-box alternative.

Run with::

    python examples/composite_domain.py [--steps 8] [--notch 4] [--subdomain-points 9]
"""

from __future__ import annotations

import argparse
import os
import sys
import time

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.domains import (
    CompositeDomain,
    CompositeMosaicGeometry,
    composite_reference_solution,
)
from repro.mosaic import FDSubdomainSolver, MosaicFlowPredictor
from repro.utils import seeded_rng


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--steps", type=int, default=8,
                        help="bounding-box size in half-subdomain steps")
    parser.add_argument("--notch", type=int, default=4,
                        help="notch size in half-subdomain steps")
    parser.add_argument("--subdomain-points", type=int, default=9,
                        help="grid points per subdomain side (odd)")
    parser.add_argument("--seed", type=int, default=0)
    return parser.parse_args()


def render_domain(geometry: CompositeMosaicGeometry) -> str:
    """Tiny ASCII picture of the step-cell layout (top row printed first)."""

    cells = geometry.domain.cell_mask()
    return "\n".join(
        "  " + "".join("#" if covered else "." for covered in row)
        for row in cells[::-1]
    )


def main() -> None:
    args = parse_args()
    rng = seeded_rng(args.seed)

    # ------------------------------------------------------------- geometry
    domain = CompositeDomain.l_shape(args.steps, args.steps, args.notch, args.notch)
    geometry = CompositeMosaicGeometry(args.subdomain_points, 0.5, domain)
    box = geometry.box
    print("[1/3] L-shaped composite domain "
          f"({domain.num_cells} of {args.steps * args.steps} step cells):")
    print(render_domain(geometry))
    print(f"  anchors: {geometry.num_subdomains} "
          f"(bounding box would use {box.num_subdomains})")
    print(f"  boundary loop: {geometry.global_boundary_size} samples along "
          f"{len(domain.boundary_corners)} corners")

    # ------------------------------------------------------------- solve
    weights = rng.normal(size=3)
    loop = geometry.boundary_from_function(
        lambda x, y: weights[0] * (x * x - y * y)
        + weights[1] * x * y
        + weights[2] * (x - 2.0 * y)
    )
    solver = FDSubdomainSolver(geometry.subdomain_grid(), method="direct")
    predictor = MosaicFlowPredictor(geometry, solver, batched=True)
    print("[2/3] Running the Mosaic Flow iteration ...")
    tic = time.perf_counter()
    result = predictor.run(loop, max_iterations=400, tol=1e-8)
    elapsed = time.perf_counter() - tic
    print(f"  converged={result.converged} after {result.iterations} iterations "
          f"({elapsed:.2f}s, {solver.inference_calls} subdomain solves)")

    # ------------------------------------------------------------- evaluate
    print("[3/3] Masked finite-difference reference on the composite grid ...")
    reference = composite_reference_solution(geometry, loop)
    valid = geometry.valid_mask()
    difference = np.abs(result.solution[valid] - reference[valid])
    print(f"  MAE vs reference: {difference.mean():.3e}")
    print(f"  max abs difference: {difference.max():.3e}")
    print(f"  anchor savings vs bounding box: "
          f"{1.0 - geometry.num_subdomains / box.num_subdomains:.0%}")


if __name__ == "__main__":
    main()
