"""Distributed Mosaic Flow inference (Algorithm 2) on a simulated cluster.

Solves the Laplace equation on a large domain with a Gaussian-process
boundary condition using the domain-parallel Mosaic Flow predictor on 1, 2
and 4 simulated ranks, and reports

* iterations needed to reach the MAE target (the Table 4 effect: a mild
  increase with the processor count caused by relaxed synchronization),
* the measured per-rank time breakdown (model inference, sendrecv, allgather,
  boundaries IO — the stacked categories of Figure 9a),
* the halo traffic per iteration and its projected cost on the paper's
  InfiniBand interconnect.

The subdomain solver is selectable: ``--solver fd`` uses the exact
finite-difference solver (isolates the distributed algorithm), ``--solver
sdnet`` trains a small SDNet first and uses it, as in the paper.

Run with::

    python examples/distributed_inference.py [--world-sizes 1 2 4] [--solver fd]
"""

from __future__ import annotations

import argparse
import os
import sys

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.data import GaussianProcessSampler, generate_dataset
from repro.distributed import INTERCONNECTS
from repro.fd import solve_laplace_from_loop
from repro.models import SDNet
from repro.mosaic import (
    DistributedMosaicFlowPredictor,
    FDSubdomainSolver,
    MosaicGeometry,
    SDNetSubdomainSolver,
)
from repro.training import Trainer, TrainingConfig


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--world-sizes", type=int, nargs="+", default=[1, 2, 4])
    parser.add_argument("--steps", type=int, default=8,
                        help="half-subdomain steps per side of the global domain")
    parser.add_argument("--resolution", type=int, default=9,
                        help="grid points per subdomain side (odd)")
    parser.add_argument("--solver", choices=["fd", "sdnet"], default="fd")
    parser.add_argument("--target-mae", type=float, default=0.05)
    parser.add_argument("--max-iterations", type=int, default=400)
    parser.add_argument("--seed", type=int, default=0)
    return parser.parse_args()


def build_solver_factory(args, geometry):
    if args.solver == "fd":
        return lambda: FDSubdomainSolver(geometry.subdomain_grid(), method="direct")

    print("Training a small SDNet to use as the subdomain solver ...")
    dataset = generate_dataset(num_samples=48, resolution=args.resolution,
                               extent=(0.5, 0.5), seed=args.seed)
    train, val = dataset.split(validation_fraction=0.125, seed=args.seed)
    model = SDNet(boundary_size=dataset.grid.boundary_size, hidden_size=24,
                  trunk_layers=2, embedding_channels=(2,), rng=args.seed)
    config = TrainingConfig(epochs=4, batch_size=8, data_points_per_domain=32,
                            collocation_points_per_domain=16, max_lr=3e-3, seed=args.seed)
    Trainer(model, config, train, val).fit()
    return lambda: SDNetSubdomainSolver(model)


def main() -> None:
    args = parse_args()
    geometry = MosaicGeometry(
        subdomain_points=args.resolution,
        subdomain_extent=0.5,
        steps_x=args.steps,
        steps_y=args.steps,
    )
    grid = geometry.global_grid()
    print(f"Global domain: {grid.extent[0]:.1f} x {grid.extent[1]:.1f} "
          f"({grid.ny}x{grid.nx} grid, {geometry.num_subdomains} atomic subdomains)")

    sampler = GaussianProcessSampler(boundary_size=grid.boundary_size,
                                     perimeter=2 * sum(grid.extent), seed=args.seed)
    loop = grid.extract_boundary(grid.insert_boundary(sampler.sample_one()))
    print("Computing the finite-difference reference solution ...")
    reference = solve_laplace_from_loop(grid, loop, method="auto")

    solver_factory = build_solver_factory(args, geometry)
    network = INTERCONNECTS["infiniband-100g"]

    print(f"\n{'GPUs':>5} | {'iterations':>10} | {'MAE':>9} | {'inference':>10} | "
          f"{'sendrecv':>9} | {'allgather':>9} | {'halo/iter':>10} | {'IB est/iter':>11}")
    for world_size in args.world_sizes:
        predictor = DistributedMosaicFlowPredictor(geometry, solver_factory)
        results = predictor.run(
            world_size, loop,
            max_iterations=args.max_iterations,
            tol=0.0,
            reference=reference,
            target_mae=args.target_mae,
            check_interval=2,
        )
        root = results[0]
        mae = float(np.mean(np.abs(root.solution - reference)))
        inference = max(r.timings.get("inference", 0.0) for r in results)
        sendrecv = max(r.timings.get("sendrecv", 0.0) for r in results)
        allgather = max(r.timings.get("allgather", 0.0) for r in results)
        halo = max(r.halo_bytes_per_iteration for r in results)
        modeled = network.point_to_point(halo, messages=8) if world_size > 1 else 0.0
        print(f"{world_size:>5} | {root.iterations:>10} | {mae:>9.4f} | {inference:>9.2f}s | "
              f"{sendrecv:>8.2f}s | {allgather:>8.3f}s | {halo:>8d} B | {modeled*1e6:>9.1f}us")

    print("\nNote: ranks are simulated with threads on one CPU, so wall-clock does not")
    print("shrink with the world size; iteration counts, traffic volumes and the")
    print("projected interconnect costs are the quantities to compare with the paper.")


if __name__ == "__main__":
    main()
