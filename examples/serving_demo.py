"""Serving demo: 120 mixed BVP requests through the batched inference server.

The demo drives the ``repro.serving`` subsystem the way a production client
would:

1. generate a deterministic stream of 120 boundary value problems — two
   domain geometries, random harmonic-mix boundary data, and a realistic
   share of repeated queries,
2. submit them all to a :class:`repro.serving.Server` configured with
   dynamic batching, an LRU solution cache and a 2-rank worker pool,
3. print the server's stats report (fused runs, cache hit rate, latency
   percentiles) — batching + caching make *far fewer* solver runs than there
   are requests, and
4. verify every served solution against a standalone
   :class:`repro.mosaic.MosaicFlowPredictor` solve of the same BVP
   (max |difference| must be below 1e-8).

Run with::

    python examples/serving_demo.py [--requests 120] [--seed 0]
"""

from __future__ import annotations

import argparse
import os
import sys
import time

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.mosaic import FDSubdomainSolver, MosaicFlowPredictor, MosaicGeometry
from repro.pde import HARMONIC_FUNCTIONS
from repro.serving import BatchPolicy, Server, SolutionCache, SolveRequest
from repro.utils import seeded_rng

SUBDOMAIN_POINTS = 9
GEOMETRIES = [
    MosaicGeometry(subdomain_points=SUBDOMAIN_POINTS, subdomain_extent=0.5,
                   steps_x=4, steps_y=4),
    MosaicGeometry(subdomain_points=SUBDOMAIN_POINTS, subdomain_extent=0.5,
                   steps_x=6, steps_y=4),
]
TOL = 1e-7
MAX_ITERATIONS = 200
DUPLICATE_SHARE = 0.25  # fraction of traffic that repeats an earlier query


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--requests", type=int, default=120,
                        help="number of solve requests to submit (>= 100)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--world-size", type=int, default=2,
                        help="worker-pool ranks per fused batch")
    parser.add_argument("--max-batch", type=int, default=16,
                        help="dynamic batcher size limit")
    return parser.parse_args()


def make_request_stream(num_requests: int, seed: int) -> list[SolveRequest]:
    """Deterministic mixed traffic: two geometries, GP-like harmonic mixes."""

    rng = seeded_rng(seed)
    names = sorted(HARMONIC_FUNCTIONS)
    requests: list[SolveRequest] = []
    fresh: list[SolveRequest] = []
    for _ in range(num_requests):
        if fresh and rng.random() < DUPLICATE_SHARE:
            # repeat an earlier query (same canonical BVP, new request id)
            earlier = fresh[rng.integers(len(fresh))]
            request = SolveRequest.create(
                earlier.geometry, earlier.boundary_loop,
                tol=TOL, max_iterations=MAX_ITERATIONS,
            )
        else:
            geometry = GEOMETRIES[int(rng.integers(len(GEOMETRIES)))]
            weights = rng.normal(size=len(names))
            loop = geometry.global_grid().boundary_from_function(
                lambda x, y, w=weights: sum(
                    wi * HARMONIC_FUNCTIONS[name](x, y) for wi, name in zip(w, names)
                )
            )
            request = SolveRequest.create(
                geometry, loop, tol=TOL, max_iterations=MAX_ITERATIONS
            )
            fresh.append(request)
        requests.append(request)
    return requests


def main() -> None:
    args = parse_args()
    requests = make_request_stream(args.requests, args.seed)
    print(f"submitting {len(requests)} requests "
          f"({len(GEOMETRIES)} geometries, ~{DUPLICATE_SHARE:.0%} repeats)")

    server = Server(
        policy=BatchPolicy(max_batch_size=args.max_batch, max_wait_seconds=60.0),
        cache=SolutionCache(capacity=256),
        world_size=args.world_size,
    )
    tic = time.perf_counter()
    ids = [server.submit(request) for request in requests]
    results = server.drain()
    served_seconds = time.perf_counter() - tic

    print(server.stats.report())
    print(f"cache: {server.cache.stats()}")
    print(f"served {len(results)} requests in {served_seconds:.2f}s "
          f"({len(results) / served_seconds:.1f} req/s)")

    assert len(results) == len(requests)
    assert server.stats.fused_runs < len(requests), (
        "batching + caching should need fewer solver runs than requests"
    )
    print(f"solver runs: {server.stats.fused_runs} for {len(requests)} requests "
          f"({server.stats.solver_runs_saved} saved)")

    # -- verify against standalone solves -------------------------------------
    print("verifying every request against a standalone MosaicFlowPredictor run...")
    solvers = {g: FDSubdomainSolver(g.subdomain_grid(), method="direct")
               for g in GEOMETRIES}
    worst = 0.0
    tic = time.perf_counter()
    for request, request_id in zip(requests, ids):
        reference = MosaicFlowPredictor(
            request.geometry, solvers[request.geometry], batched=True
        ).run(request.boundary_loop, max_iterations=MAX_ITERATIONS, tol=TOL)
        difference = float(np.max(np.abs(results[request_id].solution
                                         - reference.solution)))
        worst = max(worst, difference)
    sequential_seconds = time.perf_counter() - tic

    assert worst < 1e-8, f"served solutions diverged from standalone solves: {worst}"
    print(f"max |served - standalone| = {worst:.2e} (< 1e-8) across "
          f"{len(requests)} requests")
    print(f"standalone solves took {sequential_seconds:.2f}s vs "
          f"{served_seconds:.2f}s served "
          f"({sequential_seconds / max(served_seconds, 1e-9):.1f}x)")


if __name__ == "__main__":
    main()
