"""Classical overlapping Schwarz vs. the Mosaic Flow predictor.

Both methods solve the same Dirichlet Laplace problem by iterating over
overlapping subdomains, but they differ in what they compute per iteration:

* classical alternating Schwarz re-solves *every grid point* of every
  subdomain with a numerical solver,
* Mosaic Flow only predicts the *interface lattice* (the subdomain centre
  lines) and defers the dense solve to a single final assembly pass.

This example runs both on the same domain and prints iteration counts, the
number of points recomputed per iteration and the final error against the
global finite-difference reference — the quantitative version of the paper's
Section 2.4 argument for interface-only iteration.

Run with::

    python examples/schwarz_vs_mosaic.py [--steps 8] [--overlap 4]
"""

from __future__ import annotations

import argparse
import os
import sys
import time

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.fd import solve_laplace
from repro.mosaic import FDSubdomainSolver, MosaicFlowPredictor, MosaicGeometry
from repro.pde import HARMONIC_FUNCTIONS
from repro.schwarz import AlternatingSchwarz, uniform_decomposition


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--steps", type=int, default=8,
                        help="half-subdomain steps per side of the domain")
    parser.add_argument("--resolution", type=int, default=9,
                        help="grid points per subdomain side (odd)")
    parser.add_argument("--overlap", type=int, default=4,
                        help="overlap (grid points) of the classical Schwarz windows")
    parser.add_argument("--blocks", type=int, default=2,
                        help="classical Schwarz blocks per side")
    parser.add_argument("--boundary", choices=sorted(HARMONIC_FUNCTIONS), default="exp_sine")
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    geometry = MosaicGeometry(
        subdomain_points=args.resolution, subdomain_extent=0.5,
        steps_x=args.steps, steps_y=args.steps,
    )
    grid = geometry.global_grid()
    fn = HARMONIC_FUNCTIONS[args.boundary]
    exact = grid.field_from_function(fn)
    boundary_field = np.where(grid.boundary_mask(), exact, 0.0)
    loop = grid.extract_boundary(exact)

    print(f"Domain: {grid.extent[0]:.1f} x {grid.extent[1]:.1f} ({grid.ny}x{grid.nx} grid), "
          f"boundary condition: '{args.boundary}'")
    print("Computing the global finite-difference reference ...")
    reference = solve_laplace(grid, boundary_field, method="auto")

    # ------------------------------------------------------ classical Schwarz
    windows = uniform_decomposition(grid, (args.blocks, args.blocks), overlap=args.overlap)
    schwarz = AlternatingSchwarz(grid, windows, mode="multiplicative")
    tic = time.perf_counter()
    schwarz_result = schwarz.run(boundary_field, max_iterations=100, tol=1e-8,
                                 reference=reference)
    schwarz_time = time.perf_counter() - tic

    # ---------------------------------------------------------- Mosaic Flow
    mosaic = MosaicFlowPredictor(
        geometry, FDSubdomainSolver(geometry.subdomain_grid(), method="direct"), batched=True
    )
    tic = time.perf_counter()
    mosaic_result = mosaic.run(loop, max_iterations=400, tol=1e-7, reference=reference)
    mosaic_time = time.perf_counter() - tic

    interface_points = len(geometry.center_line_local_indices()[0]) * max(
        len(geometry.anchors_for_phase(p)) for p in range(4)
    )

    print(f"\n{'method':<32} | {'iterations':>10} | {'pts/iteration':>13} | "
          f"{'final MAE':>10} | {'time':>7}")
    print("-" * 88)
    print(f"{'classical alternating Schwarz':<32} | {schwarz_result.iterations:>10} | "
          f"{schwarz.points_solved_per_iteration:>13} | "
          f"{np.mean(np.abs(schwarz_result.solution - reference)):>10.2e} | "
          f"{schwarz_time:>6.1f}s")
    print(f"{'Mosaic Flow (interface lattice)':<32} | {mosaic_result.iterations:>10} | "
          f"{interface_points:>13} | "
          f"{np.mean(np.abs(mosaic_result.solution - reference)):>10.2e} | "
          f"{mosaic_time:>6.1f}s")

    ratio = schwarz.points_solved_per_iteration / interface_points
    print(f"\nMosaic Flow evaluates {ratio:.0f}x fewer points per iteration; classical Schwarz")
    print("needs fewer iterations (it uses much larger subdomains with more overlap), which is")
    print("exactly the trade-off the paper exploits: cheap interface-only iterations that are")
    print("batched into large device-friendly inferences.")


if __name__ == "__main__":
    main()
