"""Inference-engine quickstart: trace, inspect, and serve a compiled SDNet.

Walks the whole ``repro.engine`` pipeline on a small SDNet:

1. trace one forward pass into a static operator graph and print it,
2. run the compiler passes (constant folding, gather lowering, elementwise
   fusion, dead-code elimination) and print the optimized graph,
3. verify bitwise parity and measure the per-call speedup over eager mode,
4. run a full compiled Mosaic Flow solve on the L-shape composite domain
   from the composite-geometry work (``engine=True`` on the predictor) and
   confirm it reproduces the eager solve bit for bit.

Run with::

    python examples/engine_quickstart.py [--steps 6] [--notch 3] [--seed 0]
"""

from __future__ import annotations

import argparse
import os
import sys
import time

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.domains import CompositeDomain, CompositeMosaicGeometry
from repro.engine import compile_module, optimize, trace
from repro.models import SDNet
from repro.mosaic import MosaicFlowPredictor, SDNetSubdomainSolver
from repro.utils import seeded_rng


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--steps", type=int, default=6,
                        help="bounding-box size in half-subdomain steps")
    parser.add_argument("--notch", type=int, default=3,
                        help="notch size in half-subdomain steps")
    parser.add_argument("--subdomain-points", type=int, default=9,
                        help="grid points per subdomain side (odd)")
    parser.add_argument("--seed", type=int, default=0)
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    rng = seeded_rng(args.seed)

    # ------------------------------------------------------------ geometry
    domain = CompositeDomain.l_shape(args.steps, args.steps, args.notch, args.notch)
    geometry = CompositeMosaicGeometry(args.subdomain_points, 0.5, domain)
    boundary_size = geometry.subdomain_grid().boundary_size
    model = SDNet(boundary_size=boundary_size, hidden_size=24, trunk_layers=2,
                  embedding_channels=(2,), rng=rng)

    # ------------------------------------------------------------ trace
    batch = 8
    g = rng.normal(size=(batch, boundary_size))
    x = rng.normal(size=(batch, 15, 2))
    raw = trace(model, g, x)
    print(f"[1/4] Traced one SDNet forward pass: {len(raw)} nodes")
    print(str(raw))

    # ------------------------------------------------------------ optimize
    optimized = optimize(raw)
    print(f"\n[2/4] After compiler passes: {len(optimized)} nodes")
    print(str(optimized))
    print("  op histogram:", dict(sorted(optimized.op_counts().items())))

    # ------------------------------------------------------------ parity + speed
    compiled = compile_module(model)
    eager_out = model.predict(g, x)
    compiled_out = compiled.predict(g, x)
    assert eager_out.tobytes() == compiled_out.tobytes()
    reps = 100
    tic = time.perf_counter()
    for _ in range(reps):
        model.predict(g, x)
    eager_s = (time.perf_counter() - tic) / reps
    tic = time.perf_counter()
    for _ in range(reps):
        compiled.predict(g, x)
    compiled_s = (time.perf_counter() - tic) / reps
    print(f"\n[3/4] Forward parity: bitwise identical; "
          f"eager {eager_s * 1e6:.0f}us vs compiled {compiled_s * 1e6:.0f}us "
          f"({eager_s / compiled_s:.2f}x) at batch {batch}")

    # ------------------------------------------------------------ composite solve
    weights = rng.normal(size=3)
    loop = geometry.boundary_from_function(
        lambda px, py: weights[0] * (px * px - py * py)
        + weights[1] * px * py + weights[2] * (px - 2.0 * py)
    )
    print("\n[4/4] Compiled Mosaic Flow solve on the L-shape composite domain ...")
    runs = {}
    for label, engine in (("eager", False), ("engine", True)):
        predictor = MosaicFlowPredictor(
            geometry, SDNetSubdomainSolver(model), batched=True, engine=engine
        )
        tic = time.perf_counter()
        result = predictor.run(loop, max_iterations=200, tol=1e-6)
        runs[label] = (result, time.perf_counter() - tic)
        print(f"  {label:>6}: {result.iterations} iterations, "
              f"converged={result.converged}, {runs[label][1]:.2f}s")
    eager_solution = runs["eager"][0].solution
    engine_solution = runs["engine"][0].solution
    assert eager_solution.tobytes() == engine_solution.tobytes()
    print(f"  solutions bitwise identical; solve speedup "
          f"{runs['eager'][1] / runs['engine'][1]:.2f}x")


if __name__ == "__main__":
    main()
