"""Durable supervised serving demo: crash, recover, and keep the SLO.

The demo walks the full robustness story of ``repro.serving`` in one run:

1. **Crash-recoverable journal** — a server journals every request-store
   transition to a write-ahead log; the process then "crashes" (we drop the
   server without a graceful shutdown) and a *second* server recovers the
   journal, replaying every completed solve bitwise from disk — zero solver
   runs to re-serve the same traffic.
2. **Worker supervision** — a third server runs under seeded fault
   injection: workers die mid-batch and heartbeats go missing, the
   supervisor requeues the stranded requests exactly-once, and every result
   still matches the clean run bitwise.
3. **Circuit breaker** — a persistently failing backend trips its breaker;
   requests are rejected fast and typed instead of burning retries, and a
   half-open probe closes the breaker once the backend heals.
4. **Memory-driven shedding** — with a live-bytes budget, low-priority
   traffic sheds first as pressure rises while paid traffic keeps serving.
5. **Graceful shutdown** — ``drain_and_close()`` finishes in-flight work,
   refuses new submissions with a typed error, and compacts the journal to
   a claim-free snapshot for the next process.

Run with::

    python examples/supervised_serving_demo.py [--requests 24] [--seed 0]
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.mosaic import MosaicGeometry
from repro.obs.memory import (
    MemoryAccountant,
    disable_memory_accounting,
    enable_memory_accounting,
)
from repro.pde import HARMONIC_FUNCTIONS
from repro.serving import (
    CRASH,
    WORKER_DEATH,
    WORKER_SOLVE,
    BatchPolicy,
    BreakerBoard,
    BreakerPolicy,
    CircuitOpenError,
    FaultInjector,
    FaultSchedule,
    FaultSpec,
    MemoryPressureError,
    Server,
    ServerClosedError,
    SolutionCache,
    SolveRequest,
    TenantQuota,
)
from repro.utils import seeded_rng

GEOMETRY = MosaicGeometry(
    subdomain_points=9, subdomain_extent=0.5, steps_x=4, steps_y=4
)
TOL = 1e-7
MAX_ITERATIONS = 120


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--requests", type=int, default=24)
    parser.add_argument("--seed", type=int, default=0)
    return parser.parse_args()


def make_loops(count: int, seed: int) -> np.ndarray:
    rng = seeded_rng(seed)
    names = sorted(HARMONIC_FUNCTIONS)
    grid = GEOMETRY.global_grid()
    loops = []
    for _ in range(count):
        weights = rng.normal(size=len(names))
        loops.append(grid.boundary_from_function(
            lambda x, y, w=weights: sum(
                wi * HARMONIC_FUNCTIONS[name](x, y) for wi, name in zip(w, names)
            )
        ))
    return np.stack(loops)


def requests_for(loops: np.ndarray, **kwargs) -> list[SolveRequest]:
    return [
        SolveRequest.create(GEOMETRY, loop, tol=TOL,
                            max_iterations=MAX_ITERATIONS, **kwargs)
        for loop in loops
    ]


def make_server(**kwargs) -> Server:
    kwargs.setdefault("policy", BatchPolicy(max_batch_size=8, max_wait_seconds=60.0))
    kwargs.setdefault("cache", SolutionCache(capacity=256))
    return Server(**kwargs)


def crash_and_recover(loops: np.ndarray, journal_path: Path) -> dict[str, bytes]:
    print("=== 1. journal + crash recovery " + "=" * 35)
    first = make_server(journal=journal_path)
    requests = requests_for(loops)
    for request in requests:
        first.submit(request)
    results = first.drain()
    print(f"first process served {len(results)} requests "
          f"({first.stats.fused_runs} fused solver runs), then crashes "
          "WITHOUT a graceful shutdown")
    del first  # no close(): the journal on disk is all that survives

    second = make_server(journal=journal_path)
    print(f"second process recovered {second.recovery.completed} completed "
          f"results from {second.recovery.records} journal records "
          f"({len(second.recovery.orphaned)} orphaned claims)")
    replayed = requests_for(loops)
    for request in replayed:
        second.submit(request)
    replay_results = second.drain()
    assert second.stats.fused_runs == 0, "recovery must not re-solve anything"
    worst = 0.0
    for old, new in zip(requests, replayed):
        a = results[old.request_id].solution
        b = replay_results[new.request_id].solution
        assert a.tobytes() == b.tobytes(), "recovered result is not bitwise equal"
        worst = max(worst, float(np.max(np.abs(a - b))))
    print(f"replayed all {len(replayed)} requests bitwise from the journal "
          f"(0 solver runs, max|diff| = {worst:.1e})\n")
    second.drain_and_close()
    return {r.request_id: results[r.request_id].solution.tobytes()
            for r in requests}


def supervised_chaos(loops: np.ndarray, clean: dict[str, bytes],
                     clean_requests_seed: int) -> None:
    print("=== 2. worker deaths + supervision " + "=" * 32)
    schedule = FaultSchedule.seeded(
        seed=clean_requests_seed + 7, num_faults=3,
        sites=(WORKER_DEATH,), max_index=3,
    )
    faults = FaultInjector(schedule)
    server = make_server(faults=faults, supervisor=True)
    requests = requests_for(loops)
    for request in requests:
        server.submit(request)
    results = server.drain()
    supervisor = server.supervisor
    print(f"under a seeded schedule of {len(schedule)} worker-death faults: "
          f"{supervisor.deaths} deaths, {server.stats.requeues} requests "
          f"requeued, {supervisor.restarts} restarts scheduled")
    assert len(results) == len(requests)
    for request, clean_bytes in zip(requests, clean.values()):
        assert results[request.request_id].solution.tobytes() == clean_bytes
    print(f"all {len(requests)} results bitwise-identical to the "
          "crash-free run\n")


def circuit_breaking(loops: np.ndarray) -> None:
    print("=== 3. circuit breaker " + "=" * 44)
    faults = FaultInjector(
        [FaultSpec(site=WORKER_SOLVE, index=i, kind=CRASH) for i in range(3)]
    )
    board = BreakerBoard(BreakerPolicy(failure_threshold=3,
                                       reset_timeout_seconds=0.05))
    server = make_server(faults=faults, max_retries=0, breakers=board)
    requests = requests_for(loops)
    for request in requests[:3]:
        future = server.submit_async(request)
        server.drain()
        assert future.exception() is not None
    print("3 consecutive backend failures tripped the breaker: "
          f"{board.snapshot()['states']}")
    try:
        server.submit(requests[3])
        raise AssertionError("expected a fast CircuitOpenError rejection")
    except CircuitOpenError as error:
        print(f"fast typed rejection while open: {type(error).__name__} "
              f"(no solver run burned)")
    time.sleep(0.06)  # cool-down passes; the half-open probe heals the key
    server.submit(requests[4])
    results = server.drain()
    assert requests[4].request_id in results
    print(f"half-open probe solved cleanly and closed the breaker: "
          f"{board.snapshot()['states']}\n")


def memory_shedding(loops: np.ndarray) -> None:
    print("=== 4. memory-driven load shedding " + "=" * 32)
    quotas = {"free": TenantQuota(priority=0), "paid": TenantQuota(priority=2)}
    server = make_server(quotas=quotas)
    free_at = server.admission.shed_threshold(0)
    paid_at = server.admission.shed_threshold(2)
    print(f"shed thresholds: free at {free_at:.2f} pressure, "
          f"paid at {paid_at:.2f}")
    accountant = enable_memory_accounting(MemoryAccountant(budget_bytes=1_000_000))
    try:
        accountant.add("demo.ballast", 850_000)
        free, paid = requests_for(loops[:1], tenant="free") + \
            requests_for(loops[1:2], tenant="paid")
        try:
            server.submit(free)
            raise AssertionError("free tier should shed at 0.85 pressure")
        except MemoryPressureError:
            print(f"pressure {accountant.pressure():.2f}: free tier shed "
                  "(typed MemoryPressureError), paid tier still admitted")
        server.submit(paid)
        results = server.drain()
        assert paid.request_id in results
        print(f"memory sheds: {server.stats.memory_sheds}, "
              f"headroom {accountant.headroom_bytes():,} bytes\n")
    finally:
        disable_memory_accounting()


def graceful_shutdown(loops: np.ndarray, journal_path: Path) -> None:
    print("=== 5. graceful drain_and_close " + "=" * 35)
    server = make_server(journal=journal_path, supervisor=True)
    requests = requests_for(loops)
    for request in requests:
        server.submit(request)
    results = server.drain_and_close()
    health = server.health()
    print(f"drained {len(results)} in-flight results; status={health['status']!r} "
          f"ready={health['ready']} live={health['live']}")
    try:
        server.submit(requests_for(loops[:1])[0])
        raise AssertionError("a draining server must refuse new submissions")
    except ServerClosedError:
        print("new submission refused with ServerClosedError")
    stats = server.store.journal.stats()
    print(f"journal compacted: {stats['checkpoints']} checkpoint, "
          f"{stats['size_bytes']:,} bytes on disk for the next process")


def main() -> None:
    args = parse_args()
    loops = make_loops(args.requests, args.seed)
    print(f"{args.requests} deterministic BVP requests on a "
          f"{GEOMETRY.steps_x}x{GEOMETRY.steps_y} mosaic\n")
    with tempfile.TemporaryDirectory() as tmp:
        clean = crash_and_recover(loops, Path(tmp) / "requests.wal")
        supervised_chaos(loops, clean, args.seed)
        circuit_breaking(loops[:6])
        memory_shedding(loops[:2])
        graceful_shutdown(loops[:4], Path(tmp) / "shutdown.wal")
    print("\nall durability scenarios passed")


if __name__ == "__main__":
    main()
