"""Train an SDNet with the compiled physics loss.

Demonstrates the jet compiler in the training loop (PR 5): the Taylor-mode
Laplacian residual **and** its parameter backward pass run as one compiled
program (``TrainingConfig(engine=True)`` -> ``PinnLoss(engine=True)`` ->
``repro.engine.CompiledValueAndGrad``), with bucketed execution plans reused
across the ragged collocation batches of each epoch.

The script trains the same model twice from the same seed — once eagerly,
once compiled — and shows:

* per-epoch wall times and the mean physics-loss step time of both runs,
* that the loss histories and final parameters are **bitwise identical**
  (the compiled program replays the eager tape's floating-point operations
  exactly, so the engine changes speed, never results),
* the engine's plan statistics: traces taken, bucket templates built and
  plan memory in use.

Run from the repository root:

    PYTHONPATH=src python examples/compiled_training.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.data import generate_dataset
from repro.models import SDNet
from repro.training import Trainer, TrainingConfig

RESOLUTION = 9
EPOCHS = 3


def build_trainer(engine: bool, dataset, validation):
    model = SDNet(
        boundary_size=dataset.grid.boundary_size,
        hidden_size=24,
        trunk_layers=2,
        embedding_channels=(2,),
        rng=0,
    )
    config = TrainingConfig(
        epochs=EPOCHS,
        batch_size=8,
        data_points_per_domain=32,
        collocation_points_per_domain=16,
        max_lr=3e-3,
        seed=0,
        engine=engine,
    )
    return Trainer(model, config, dataset, validation)


def main() -> None:
    print("generating dataset (GP boundaries + FD reference solutions)...")
    dataset = generate_dataset(
        num_samples=40, resolution=RESOLUTION, extent=(0.5, 0.5), seed=0
    )
    train, validation = dataset.split(validation_fraction=0.2, seed=0)

    results = {}
    for engine in (False, True):
        label = "compiled" if engine else "eager"
        trainer = build_trainer(engine, train, validation)

        # time the physics-loss step in isolation (the tentpole hot path)
        batch = next(iter(trainer._iterator(rank=0, world_size=1)))
        from repro.autodiff import Tensor

        g = Tensor(batch.boundaries)
        x = Tensor(batch.x_collocation)
        trainer.loss_fn.pde_term_and_grads(trainer.model, g, x)  # warm-up
        tic = time.perf_counter()
        for _ in range(10):
            trainer.loss_fn.pde_term_and_grads(trainer.model, g, x)
        step_ms = (time.perf_counter() - tic) / 10 * 1e3

        tic = time.perf_counter()
        history = trainer.fit()
        total = time.perf_counter() - tic
        results[engine] = (trainer, history, step_ms, total)
        print(
            f"{label:9s}: physics-loss step {step_ms:6.2f} ms | "
            f"epochs {[f'{t:.2f}s' for t in history.epoch_times]} | "
            f"total {total:.2f}s"
        )

    eager_trainer, eager_history, eager_step, eager_total = results[False]
    engine_trainer, engine_history, engine_step, engine_total = results[True]

    print()
    print(f"physics-loss step speedup : {eager_step / engine_step:.2f}x")
    print(f"end-to-end epoch speedup  : {eager_total / engine_total:.2f}x")

    identical_losses = (
        eager_history.train_loss == engine_history.train_loss
        and eager_history.train_pde_loss == engine_history.train_pde_loss
    )
    state_e = eager_trainer.model.state_dict()
    state_c = engine_trainer.model.state_dict()
    identical_params = all(
        state_e[name].tobytes() == state_c[name].tobytes() for name in state_e
    )
    print(f"loss histories identical  : {identical_losses}")
    print(f"final params bitwise same : {identical_params}")
    print(f"final train loss          : {engine_history.train_loss[-1]:.6e}")
    assert identical_losses and identical_params, "engine must not change results"

    program = engine_trainer.loss_fn._program_for(engine_trainer.model)
    stats = program.stats.as_dict()
    print()
    print("engine statistics:")
    print(f"  traces            : {stats['traces']}")
    print(f"  bucket templates  : {stats['bucket_templates']}")
    print(f"  plan builds       : {stats['plan_builds']}")
    print(f"  specializations   : {stats['specializations']}")
    print(f"  plan bytes        : {stats['plan_bytes'] / 1e6:.2f} MB")
    print(f"  compiled calls    : {stats['calls']}")


if __name__ == "__main__":
    np.set_printoptions(precision=4, suppress=True)
    main()
