"""Data-parallel SDNet training (Algorithm 1) on a simulated multi-GPU cluster.

Reproduces the training side of the paper (Section 3): the same SDNet is
trained on 1, 2 and 4 simulated ranks with the paper's large-batch recipe —
per-rank batch size held fixed, peak learning rate scaled by sqrt(k), warmup
fraction scaled linearly, LAMB optimizer — and the script reports

* the per-epoch validation MSE for each world size (Figure 6a),
* the number of gradient allreduces (one per iteration, per Algorithm 1),
* a modeled time-to-target comparison using the A30 platform parameters.

Run with::

    python examples/train_sdnet_ddp.py [--epochs 4] [--world-sizes 1 2 4]
"""

from __future__ import annotations

import argparse
import os
import sys

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.data import generate_dataset
from repro.distributed import INTERCONNECTS
from repro.models import SDNet
from repro.training import DataParallelTrainer, TrainingConfig


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--samples", type=int, default=64)
    parser.add_argument("--epochs", type=int, default=4)
    parser.add_argument("--resolution", type=int, default=9)
    parser.add_argument("--world-sizes", type=int, nargs="+", default=[1, 2, 4])
    parser.add_argument("--seed", type=int, default=0)
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    print(f"Generating dataset ({args.samples} instances) ...")
    dataset = generate_dataset(num_samples=args.samples, resolution=args.resolution,
                               extent=(0.5, 0.5), seed=args.seed)
    train, val = dataset.split(validation_fraction=0.1, seed=args.seed)

    def model_factory():
        return SDNet(
            boundary_size=dataset.grid.boundary_size,
            hidden_size=24,
            trunk_layers=2,
            embedding_channels=(2,),
            rng=args.seed,
        )

    base_config = TrainingConfig(
        epochs=args.epochs,
        batch_size=8,
        data_points_per_domain=32,
        collocation_points_per_domain=16,
        max_lr=2e-3,
        optimizer="lamb",
        seed=args.seed,
    )

    network = INTERCONNECTS["nvlink-200g"]   # the A30 platform of the paper
    model_bytes = model_factory().num_parameters() * 8
    batches_per_epoch = len(train) // base_config.batch_size

    summary = []
    single_epoch_time = None
    for world_size in args.world_sizes:
        print(f"\n=== world size {world_size} "
              f"(global batch {base_config.batch_size * world_size}) ===")
        trainer = DataParallelTrainer(model_factory, base_config, train, val,
                                      apply_scaling_rules=True)
        results = trainer.run(world_size)
        history = results[0].history
        measured_epoch = float(np.mean(history.epoch_times))
        if world_size == args.world_sizes[0]:
            single_epoch_time = measured_epoch * world_size  # approximate 1-rank cost
        allreduce_cost = batches_per_epoch * network.ring_allreduce(model_bytes, world_size)
        modeled_epoch = single_epoch_time / world_size + allreduce_cost

        for epoch, mse in enumerate(history.validation_mse, start=1):
            print(f"  epoch {epoch:2d}: validation MSE = {mse:.6f}")
        print(f"  gradient allreduces          : {results[0].gradient_allreduce_count}")
        print(f"  allreduce payload            : {model_bytes / 1024:.1f} KiB")
        print(f"  modeled epoch time (A30+IB)  : {modeled_epoch:.2f} s")
        summary.append((world_size, history.validation_mse[-1], modeled_epoch))

    print("\n=== summary ===")
    print(f"{'GPUs':>5} | {'final val MSE':>14} | {'modeled epoch time':>19} | {'speedup':>8}")
    base = summary[0][2]
    for world_size, final_mse, epoch_time in summary:
        print(f"{world_size:>5} | {final_mse:>14.6f} | {epoch_time:>17.2f} s | {base / epoch_time:>7.2f}x")


if __name__ == "__main__":
    main()
